"""Guest application framework.

The paper evaluates five Java applications (Table 1).  The originals are
2001-era closed binaries, so each is reproduced as a *synthetic
equivalent*: a guest program with the same structural characteristics —
class population, content sizes, native-call profile, CPU/memory mix —
expressed against the guest VM's execution context.  DESIGN.md section 3
documents why this substitution preserves the evaluation's shape.

Conventions every application follows:

* ``install`` registers classes idempotently (the class registry is
  shared between the client and surrogate, modelling the paper's shared
  bytecodes);
* ``main`` anchors its root object with ``ctx.set_global`` before any
  further allocation, then drives the workload through guest method
  invocations so that temporaries are frame-managed;
* all sizes/counts derive from the constructor parameters and the
  seeded RNG — identical configurations replay identically.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..errors import ConfigurationError
from ..vm.classloader import ClassRegistry
from ..vm.context import ExecutionContext


class GuestApplication:
    """Base class for synthetic workloads."""

    #: Short identifier (Table 1 "Name").
    name: str = "app"
    #: Table 1 "Description".
    description: str = ""
    #: Table 1 "Resource Demands".
    resource_demands: str = ""

    def install(self, registry: ClassRegistry) -> None:
        raise NotImplementedError

    def main(self, ctx: ExecutionContext) -> None:
        raise NotImplementedError

    def rng(self) -> random.Random:
        """Fresh deterministic RNG for this application instance."""
        return random.Random(getattr(self, "seed", 0))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def require_positive(**values: float) -> None:
    """Validate workload parameters eagerly.

    >>> require_positive(edits=3)
    >>> require_positive(edits=0)
    Traceback (most recent call last):
    ...
    repro.errors.ConfigurationError: edits must be positive, got 0
    """
    for name, value in values.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")


class ClassFamily:
    """Generates a family of similarly shaped classes.

    Real applications pull in large class populations (JavaNote touches
    ~134 classes at run time, most of them UI widgets and library
    types).  A family stamps out ``count`` classes named
    ``prefix.Kind00..`` sharing a field/method layout, so workloads can
    reproduce realistic class counts without hand-writing each class.
    """

    def __init__(self, registry: ClassRegistry, prefix: str, count: int) -> None:
        require_positive(count=count)
        self.registry = registry
        self.prefix = prefix
        self.count = count
        self.names: List[str] = [
            f"{prefix}{index:02d}" for index in range(count)
        ]

    def define_each(self, build) -> "ClassFamily":
        """Call ``build(builder, index)`` for each family member."""
        for index, name in enumerate(self.names):
            if self.registry.has_class(name):
                continue
            builder = self.registry.define(name)
            build(builder, index)
            builder.register()
        return self

    def name_for(self, index: int) -> str:
        return self.names[index % self.count]


class WorkloadPhase:
    """Named phase marker used by applications for readable main loops."""

    def __init__(self, label: str, steps: int) -> None:
        require_positive(steps=steps)
        self.label = label
        self.steps = steps

    def __iter__(self):
        return iter(range(self.steps))


APPLICATION_CATALOG: Dict[str, Dict[str, str]] = {
    "javanote": {
        "description": "Simple text editor",
        "resource_demands": "Content-based memory intensive",
    },
    "dia": {
        "description": "Image manipulation program",
        "resource_demands": "Content-based memory intensive",
    },
    "biomer": {
        "description": "Molecular editing application",
        "resource_demands": "Memory/CPU intensive",
    },
    "voxel": {
        "description": "Fractal landscape generator",
        "resource_demands": "CPU intensive, interactive",
    },
    "tracer": {
        "description": "Interactive Java Raytracer",
        "resource_demands": "CPU intensive, low interaction",
    },
}
