"""Execution context: where guest code runs and how calls are routed.

The context is the reproduction of the paper's interception hooks: every
method invocation, field access, and allocation made by guest code flows
through it.  The context decides *where* each operation executes:

* instance methods run on the VM hosting the receiver object;
* static Java methods run wherever the caller is currently executing
  (both VMs share the bytecodes);
* native methods are pinned to the client, unless they are annotated
  stateless and the section 5.2 enhancement is enabled;
* static data accesses are always directed to the client VM;
* new objects are created on the VM performing the creation.

Crossing sites turns the operation into a transparent RPC, whose cost is
charged through the :class:`Runtime`.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from ..config import EnhancementFlags
from ..errors import (
    GuestError,
    NullReferenceError,
    StaleObjectError,
)
from ..rpc.cache import RemoteReadCache
from ..rpc.marshal import args_size, deep_size, message_size
from .classloader import ClassRegistry
from .clock import VirtualClock
from .hooks import AccessRecord, HookFanout, InvokeRecord
from .objectmodel import (
    JArray,
    JObject,
    MethodDef,
    MethodKind,
    SLOT_SIZES,
)
from .vm import VirtualMachine

#: Class name used to attribute top-level (entry point) activity.
MAIN_CLASS = "<main>"


class Runtime:
    """Placement and transport services used by the context.

    The single-VM runtime below is trivial; the distributed runtime in
    :mod:`repro.platform` maps sites onto two device VMs joined by a
    simulated wireless link.
    """

    def client(self) -> VirtualMachine:
        raise NotImplementedError

    def vm(self, name: str) -> VirtualMachine:
        raise NotImplementedError

    def vms(self) -> Iterable[VirtualMachine]:
        raise NotImplementedError

    def transfer(self, from_site: str, to_site: str, nbytes: int) -> bool:
        """Move one message of ``nbytes`` between sites, charging time.

        Returns ``True`` when the message was delivered.  ``False``
        means the peer was declared dead under this exchange — the
        runtime has already run its recovery (state repatriated, future
        operations local), and the caller must re-resolve placement
        instead of charging the transfer.
        """
        raise NotImplementedError

    def new_instance(self, site: str, cls) -> "JObject":
        """Allocate an instance on ``site``.

        Runtimes may override placement under pressure (e.g. the
        multi-surrogate runtime spills a full surrogate's allocations to
        a sibling with free heap).
        """
        return self.vm(site).new_instance(cls)

    def new_array(self, site: str, element_type: str, length: int,
                  data=None) -> "JArray":
        return self.vm(site).new_array(element_type, length, data=data)


class SingleVMRuntime(Runtime):
    """Runtime for a standalone client VM (no surrogate attached)."""

    def __init__(self, vm: VirtualMachine) -> None:
        self._vm = vm

    def client(self) -> VirtualMachine:
        return self._vm

    def vm(self, name: str) -> VirtualMachine:
        if name != self._vm.name:
            raise StaleObjectError(f"unknown site {name!r}")
        return self._vm

    def vms(self) -> Iterable[VirtualMachine]:
        return (self._vm,)

    def transfer(self, from_site: str, to_site: str, nbytes: int) -> bool:
        raise StaleObjectError(
            "single-VM runtime cannot transfer between sites "
            f"({from_site!r} -> {to_site!r})"
        )


class Frame:
    """One guest invocation frame; its refs are GC roots."""

    __slots__ = ("site", "class_name", "oid", "refs")

    def __init__(self, site: str, class_name: str, oid: Optional[int]) -> None:
        self.site = site
        self.class_name = class_name
        self.oid = oid
        self.refs: List[JObject] = []


class ExecutionContext:
    """The single entry point through which guest code touches the VM."""

    def __init__(
        self,
        runtime: Runtime,
        registry: ClassRegistry,
        hooks: Optional[HookFanout] = None,
        flags: EnhancementFlags = EnhancementFlags(),
        data_plane=None,
    ) -> None:
        self.runtime = runtime
        self.registry = registry
        self.hooks = hooks if hooks is not None else HookFanout()
        self.flags = flags
        #: Optional :class:`repro.rpc.batch.DataPlane`: when present,
        #: remote operations route through its coalescer and read cache
        #: instead of charging one transfer pair per operation.  Absent
        #: (the default), the per-operation accounting below is used —
        #: byte-for-byte the unoptimised platform.
        self.data_plane = data_plane
        self._frames: List[Frame] = []
        #: The most recent object handed to *top-level* code is a GC
        #: root: it models the register holding a freshly produced
        #: reference, closing the window between ``new`` (or a returned
        #: value) and the store that links it.  Inside method frames the
        #: frame's ref list provides this protection instead.
        self._last_alloc: Optional[JObject] = None
        client = runtime.client()
        self.monitoring_enabled = client.config.monitoring_enabled
        self._event_cost = client.config.monitoring_event_cost
        for vm in runtime.vms():
            vm.add_root_source(self.frame_roots)

    # -- frame and site state ------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        return self.runtime.client().clock

    @property
    def current_site(self) -> str:
        if self._frames:
            return self._frames[-1].site
        return self.runtime.client().name

    @property
    def current_class(self) -> str:
        if self._frames:
            return self._frames[-1].class_name
        return MAIN_CLASS

    @property
    def current_oid(self) -> Optional[int]:
        if self._frames:
            return self._frames[-1].oid
        return None

    @property
    def depth(self) -> int:
        return len(self._frames)

    def frame_roots(self) -> List[JObject]:
        """All objects referenced from any live frame (GC roots)."""
        roots: List[JObject] = []
        for frame in self._frames:
            roots.extend(frame.refs)
        if self._last_alloc is not None and self._last_alloc.alive:
            roots.append(self._last_alloc)
        return roots

    def set_global(self, name: str, obj: Optional[JObject]) -> None:
        """Install a named root on the client VM (a "static" anchor).

        Top-level application code must anchor its root object here (or
        link it into an already-anchored object) before allocating
        further, otherwise the collector is entitled to reclaim it.
        """
        self.runtime.client().set_root(name, obj)

    def get_global(self, name: str) -> Optional[JObject]:
        return self.runtime.client().get_root(name)

    def retain(self, obj: JObject) -> JObject:
        """Pin ``obj`` into the current frame (a guest local variable)."""
        if self._frames:
            self._frames[-1].refs.append(obj)
        return obj

    # -- CPU ------------------------------------------------------------------

    def work(self, reference_seconds: float) -> None:
        """Charge data-dependent CPU time to the current class and site."""
        if reference_seconds == 0:
            return
        vm = self.runtime.vm(self.current_site)
        vm.charge_cpu(reference_seconds)
        if self.monitoring_enabled:
            self.hooks.on_cpu(self.current_class, vm.name, reference_seconds)

    def _charge_monitoring_event(self, site: str, events: int = 1) -> None:
        if self.monitoring_enabled and self._event_cost > 0:
            self.runtime.vm(site).charge_cpu(self._event_cost * events)

    # -- allocation -------------------------------------------------------------

    def new(self, class_name: str, **field_values: Any) -> JObject:
        """Create an instance of ``class_name`` on the current site."""
        cls = self.registry.lookup(class_name)
        obj = self.runtime.new_instance(self.current_site, cls)
        vm = self.runtime.vm(obj.home)
        if not self._frames:
            self._last_alloc = obj
        for name, value in field_values.items():
            cls.field(name)
            obj.values[name] = value
        self.retain(obj)
        if self.monitoring_enabled:
            self.hooks.on_alloc(obj, vm.name)
            self._charge_monitoring_event(vm.name)
        self._run_gc_if_due(vm)
        return obj

    def new_array(
        self, element_type: str, length: int, data: Optional[list] = None
    ) -> JArray:
        """Create an array on the current site."""
        arr = self.runtime.new_array(self.current_site, element_type,
                                     length, data=data)
        vm = self.runtime.vm(arr.home)
        if not self._frames:
            self._last_alloc = arr
        self.retain(arr)
        if self.monitoring_enabled:
            self.hooks.on_alloc(arr, vm.name)
            self._charge_monitoring_event(vm.name)
        self._run_gc_if_due(vm)
        return arr

    def _run_gc_if_due(self, vm: VirtualMachine) -> None:
        dp = self.data_plane
        if (
            dp is not None
            and dp.coalescer is not None
            and dp.coalescer.pending_ops
            and vm.collector.should_collect() is not None
        ):
            # GC barrier: buffered cross-site writes must be charged
            # before the cycle, so the pause and any offload decision it
            # triggers never observe un-charged traffic.
            dp.coalescer.gc_barrier()
        report = vm.maybe_collect()
        if report is not None:
            self.hooks.on_gc_report(report, vm.name)

    # -- invocation -----------------------------------------------------------

    def invoke(self, target: JObject, method_name: str, *args: Any) -> Any:
        """Invoke an instance method on ``target``."""
        if target is None:
            raise NullReferenceError(f"invoke of {method_name!r} on null")
        if not target.alive:
            raise StaleObjectError(f"invoke on collected object {target!r}")
        mdef = target.cls.method(method_name)
        return self._dispatch(mdef, target.cls.name, target, args)

    def invoke_static(self, class_name: str, method_name: str, *args: Any) -> Any:
        """Invoke a static or class-level native method."""
        cls = self.registry.lookup(class_name)
        mdef = cls.method(method_name)
        if mdef.kind is MethodKind.INSTANCE:
            raise GuestError(
                f"{class_name}.{method_name} is an instance method; "
                "use invoke() with a receiver"
            )
        return self._dispatch(mdef, class_name, None, args)

    def _dispatch(
        self,
        mdef: MethodDef,
        callee_class: str,
        target: Optional[JObject],
        args: Tuple[Any, ...],
    ) -> Any:
        caller_class = self.current_class
        caller_oid = self.current_oid
        caller_site = self.current_site
        exec_site = self._exec_site(mdef, target)
        remote = exec_site != caller_site
        arg_bytes = args_size(args)
        coalescer = (
            self.data_plane.coalescer if self.data_plane is not None else None
        )
        if remote and coalescer is None:
            if not self.runtime.transfer(caller_site, exec_site,
                                         message_size(arg_bytes)):
                # The surrogate died under the request: recovery has
                # repatriated its state, so the call resolves locally.
                exec_site = self._exec_site(mdef, target)
                remote = exec_site != caller_site

        frame = Frame(exec_site, callee_class, target.oid if target else None)
        if target is not None:
            frame.refs.append(target)
        frame.refs.extend(a for a in args if isinstance(a, JObject))
        self._frames.append(frame)
        if self.monitoring_enabled:
            self.hooks.on_invoke_enter(callee_class, mdef, exec_site)
        try:
            if mdef.cpu_cost:
                self.work(mdef.cpu_cost)
            result = mdef.func(self, target, *args) if mdef.func else None
        finally:
            self._frames.pop()

        ret_bytes = deep_size(result) if result is not None else 0
        if remote:
            if coalescer is not None:
                # Both legs are charged here, once the return size is
                # known: the invocation closes its batch (control
                # transfers), so buffered writes, the request, and the
                # response all ride one exchange.
                coalescer.invoke(caller_site, exec_site, arg_bytes, ret_bytes)
            else:
                self.runtime.transfer(
                    exec_site, caller_site, message_size(ret_bytes)
                )
        if self.monitoring_enabled:
            record = InvokeRecord(
                caller_class=caller_class,
                caller_oid=caller_oid,
                callee_class=callee_class,
                callee_oid=target.oid if target else None,
                method=mdef.name,
                kind=mdef.kind.value,
                native_stateless=mdef.stateless,
                arg_bytes=arg_bytes,
                ret_bytes=ret_bytes,
                cpu_seconds=mdef.cpu_cost,
                caller_site=caller_site,
                exec_site=exec_site,
                remote=remote,
            )
            self.hooks.on_invoke(record)
            self._charge_monitoring_event(exec_site)
        if isinstance(result, JObject):
            if self._frames:
                self.retain(result)
            else:
                self._last_alloc = result
        return result

    def _exec_site(self, mdef: MethodDef, target: Optional[JObject]) -> str:
        if mdef.kind is MethodKind.NATIVE:
            if mdef.stateless and self.flags.stateless_natives_local:
                return self.current_site
            return self.runtime.client().name
        if mdef.kind is MethodKind.STATIC:
            return self.current_site
        if target is None:
            raise NullReferenceError(f"instance method {mdef.name!r} needs a receiver")
        return target.home

    # -- field access ------------------------------------------------------------

    def get_field(self, target: JObject, field_name: str) -> Any:
        """Read an instance field, remotely if the owner lives elsewhere."""
        self._check_target(target, field_name)
        fdef = target.cls.field(field_name)
        if fdef.static:
            return self.get_static(target.cls.name, field_name)
        value = target.values[field_name]
        self._record_access(target, field_name, value, is_write=False)
        if isinstance(value, JObject):
            self.retain(value)
        return value

    def set_field(self, target: JObject, field_name: str, value: Any) -> None:
        """Write an instance field, remotely if the owner lives elsewhere."""
        self._check_target(target, field_name)
        fdef = target.cls.field(field_name)
        if fdef.static:
            self.set_static(target.cls.name, field_name, value)
            return
        target.values[field_name] = value
        self._record_access(target, field_name, value, is_write=True)

    def _check_target(self, target: JObject, field_name: str) -> None:
        if target is None:
            raise NullReferenceError(f"field access {field_name!r} on null")
        if not target.alive:
            raise StaleObjectError(f"field access on collected object {target!r}")

    def _record_access(
        self, target: JObject, field_name: str, value: Any, is_write: bool
    ) -> None:
        accessor_site = self.current_site
        owner_site = target.home
        remote = owner_site != accessor_site
        nbytes = deep_size(value) if value is not None else SLOT_SIZES["ref"]
        cached = self._remote_transfer(
            accessor_site, owner_site, remote, nbytes, is_write,
            cache_key=RemoteReadCache.object_key(target.oid),
        )
        if self.monitoring_enabled:
            self.hooks.on_access(
                AccessRecord(
                    accessor_class=self.current_class,
                    accessor_oid=self.current_oid,
                    owner_class=target.cls.name,
                    owner_oid=target.oid,
                    field=field_name,
                    value_bytes=nbytes,
                    is_write=is_write,
                    is_static=False,
                    accessor_site=accessor_site,
                    exec_site=owner_site,
                    remote=remote,
                    cached=cached,
                )
            )
            self._charge_monitoring_event(owner_site)

    def _remote_transfer(
        self,
        accessor_site: str,
        owner_site: str,
        remote: bool,
        nbytes: int,
        is_write: bool,
        cache_key=None,
    ) -> bool:
        """Charge one data access; True when served from the read cache.

        Write invalidation runs even for *local* writes — the owner
        mutating its own state makes the peer's cached copy stale.
        """
        dp = self.data_plane
        cached = False
        if dp is not None and dp.cache is not None and cache_key is not None:
            if is_write:
                dp.cache.invalidate(cache_key)
            elif remote:
                cached = dp.cache.note_read(cache_key)
        if not remote or cached:
            return cached
        if dp is not None and dp.coalescer is not None:
            if is_write:
                dp.coalescer.write(accessor_site, owner_site, nbytes)
            else:
                dp.coalescer.read(accessor_site, owner_site, nbytes)
        elif is_write:
            # The ack leg only travels if the request was delivered; a
            # dead peer means recovery already made the write local.
            if self.runtime.transfer(accessor_site, owner_site,
                                     message_size(nbytes)):
                self.runtime.transfer(owner_site, accessor_site,
                                      message_size(0))
        else:
            if self.runtime.transfer(accessor_site, owner_site,
                                     message_size(0)):
                self.runtime.transfer(owner_site, accessor_site,
                                      message_size(nbytes))
        return False

    # -- static data (always on the client) ----------------------------------------

    def get_static(self, class_name: str, field_name: str) -> Any:
        client = self.runtime.client()
        value = client.get_static(class_name, field_name)
        self._record_static_access(class_name, field_name, value, is_write=False)
        if isinstance(value, JObject):
            self.retain(value)
        return value

    def set_static(self, class_name: str, field_name: str, value: Any) -> None:
        client = self.runtime.client()
        client.set_static(class_name, field_name, value)
        self._record_static_access(class_name, field_name, value, is_write=True)

    def _record_static_access(
        self, class_name: str, field_name: str, value: Any, is_write: bool
    ) -> None:
        accessor_site = self.current_site
        client_site = self.runtime.client().name
        remote = accessor_site != client_site
        nbytes = deep_size(value) if value is not None else SLOT_SIZES["ref"]
        cached = self._remote_transfer(
            accessor_site, client_site, remote, nbytes, is_write,
            cache_key=RemoteReadCache.static_key(class_name),
        )
        if self.monitoring_enabled:
            self.hooks.on_access(
                AccessRecord(
                    accessor_class=self.current_class,
                    accessor_oid=self.current_oid,
                    owner_class=class_name,
                    owner_oid=None,
                    field=field_name,
                    value_bytes=nbytes,
                    is_write=is_write,
                    is_static=True,
                    accessor_site=accessor_site,
                    exec_site=client_site,
                    remote=remote,
                    cached=cached,
                )
            )
            self._charge_monitoring_event(client_site)

    # -- array element access -----------------------------------------------------

    def array_read(self, arr: JArray, count: int = 1) -> None:
        """Read ``count`` elements from an array (bulk-accounted)."""
        self._array_access(arr, count, is_write=False)

    def array_write(self, arr: JArray, count: int = 1) -> None:
        """Write ``count`` elements into an array (bulk-accounted)."""
        self._array_access(arr, count, is_write=True)

    def _array_access(self, arr: JArray, count: int, is_write: bool) -> None:
        if arr is None:
            raise NullReferenceError("array access on null")
        if not arr.alive:
            raise StaleObjectError(f"array access on collected array {arr!r}")
        if count < 0:
            raise GuestError(f"negative element count {count}")
        if count == 0:
            return
        accessor_site = self.current_site
        owner_site = arr.home
        remote = owner_site != accessor_site
        nbytes = count * SLOT_SIZES[arr.element_type]
        # cache_key=None: arrays are never cached (bulk element traffic
        # is what migration places), but their transfers still coalesce.
        self._remote_transfer(accessor_site, owner_site, remote, nbytes,
                              is_write, cache_key=None)
        if self.monitoring_enabled:
            self.hooks.on_access(
                AccessRecord(
                    accessor_class=self.current_class,
                    accessor_oid=self.current_oid,
                    owner_class=arr.cls.name,
                    owner_oid=arr.oid,
                    field="[]",
                    value_bytes=nbytes,
                    is_write=is_write,
                    is_static=False,
                    accessor_site=accessor_site,
                    exec_site=owner_site,
                    remote=remote,
                )
            )
            self._charge_monitoring_event(owner_site)
