"""Incremental mark-and-sweep garbage collector.

Chai's collector is incremental and is triggered by space limitations,
by the number of objects created since the last collection, and by the
amount of memory those objects occupy.  The paper relies on this
behaviour: the frequent (at least partial) sweeps produce a stream of
free-memory reports that drive the offload trigger policy.

We reproduce the *reporting shape* with frequent full mark-and-sweep
cycles under the same three trigger conditions; the incrementality
itself (pause slicing) is irrelevant to the offloading experiments and
is modelled only through a configurable pause-time model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Set

from ..config import GCConfig
from .heap import Heap
from .objectmodel import JObject


@dataclass(frozen=True)
class GCReport:
    """Outcome of one collection cycle, delivered to trigger policies.

    ``freed_bytes == 0`` on a cycle that reclaimed nothing — the paper's
    trigger policy counts such cycles ("additional memory cannot be
    freed") towards its consecutive-low-memory tolerance.
    """

    cycle: int
    reason: str
    live_objects: int
    freed_objects: int
    freed_bytes: int
    used_bytes: int
    free_bytes: int
    capacity: int

    @property
    def free_fraction(self) -> float:
        return self.free_bytes / self.capacity


@dataclass
class GCStats:
    """Cumulative collector statistics."""

    cycles: int = 0
    objects_collected: int = 0
    bytes_collected: int = 0
    total_pause_seconds: float = 0.0


def default_pause_model(live_objects: int, freed_objects: int) -> float:
    """Pause seconds for a cycle: base cost plus per-object visit cost."""
    return 50e-6 + 0.2e-6 * (live_objects + freed_objects)


class MarkSweepCollector:
    """Mark-and-sweep collector over one :class:`Heap`.

    The collector is deliberately ignorant of the VM: roots come from a
    callable and pause time is charged through a callable, so the same
    collector is reusable by the emulator's heap model.
    """

    def __init__(
        self,
        heap: Heap,
        config: GCConfig,
        root_provider: Callable[[], Iterable[JObject]],
        charge_pause: Optional[Callable[[float], None]] = None,
        pause_model: Callable[[int, int], float] = default_pause_model,
    ) -> None:
        self.heap = heap
        self.config = config
        self._roots = root_provider
        self._charge_pause = charge_pause
        self._pause_model = pause_model
        self._report_listeners: List[Callable[[GCReport], None]] = []
        self._free_listeners: List[Callable[[JObject], None]] = []
        self._allocations_since = 0
        self._bytes_since = 0
        self.stats = GCStats()

    def subscribe(self, listener: Callable[[GCReport], None]) -> None:
        """Register a listener for per-cycle reports (trigger policies)."""
        self._report_listeners.append(listener)

    def subscribe_free(self, listener: Callable[[JObject], None]) -> None:
        """Register a listener called for each swept object.

        The execution monitor uses this to keep per-class memory totals
        current as garbage is reclaimed.
        """
        self._free_listeners.append(listener)

    # -- trigger bookkeeping --------------------------------------------------

    def note_allocation(self, size: int) -> None:
        """Record a successful allocation for the periodic triggers."""
        self._allocations_since += 1
        self._bytes_since += size

    def should_collect(self) -> Optional[str]:
        """Return the trigger reason if a cycle is due, else ``None``."""
        if self.heap.free_fraction < self.config.space_pressure_fraction:
            return "space-pressure"
        if self._allocations_since >= self.config.allocations_per_cycle:
            return "allocation-count"
        if self._bytes_since >= self.config.bytes_per_cycle:
            return "allocation-bytes"
        return None

    def maybe_collect(self) -> Optional[GCReport]:
        """Run a cycle if any trigger condition holds."""
        reason = self.should_collect()
        if reason is None:
            return None
        return self.collect(reason)

    # -- collection -------------------------------------------------------------

    def collect(self, reason: str = "explicit") -> GCReport:
        """Run one full mark-and-sweep cycle and report the outcome."""
        marked = self._mark()
        freed_objects = 0
        freed_bytes = 0
        for obj in self.heap.objects():
            if obj.oid in marked or obj.pinned:
                continue
            freed_bytes += self.heap.release(obj)
            obj.alive = False
            freed_objects += 1
            for listener in self._free_listeners:
                listener(obj)
        self._allocations_since = 0
        self._bytes_since = 0
        self.stats.cycles += 1
        self.stats.objects_collected += freed_objects
        self.stats.bytes_collected += freed_bytes
        pause = self._pause_model(self.heap.live_count, freed_objects)
        self.stats.total_pause_seconds += pause
        if self._charge_pause is not None:
            self._charge_pause(pause)
        report = GCReport(
            cycle=self.stats.cycles,
            reason=reason,
            live_objects=self.heap.live_count,
            freed_objects=freed_objects,
            freed_bytes=freed_bytes,
            used_bytes=self.heap.used,
            free_bytes=self.heap.free,
            capacity=self.heap.capacity,
        )
        for listener in self._report_listeners:
            listener(report)
        return report

    # -- marking ------------------------------------------------------------

    def _mark(self) -> Set[int]:
        """Mark phase: transitive closure from the root set.

        Only objects resident on *this* heap are traced; references to
        objects hosted elsewhere are left to their home VM's collector
        (liveness across VMs is preserved by the distributed GC's export
        pins, which set ``JObject.pinned``).
        """
        marked: Set[int] = set()
        stack = [obj for obj in self._roots() if obj is not None]
        while stack:
            obj = stack.pop()
            if obj.oid in marked:
                continue
            if not self.heap.contains(obj):
                continue
            marked.add(obj.oid)
            stack.extend(obj.references())
        return marked
