"""Byte-accounted guest heap.

The heap does bookkeeping only — the actual Python objects live wherever
CPython puts them — but every allocation and release is charged against
a fixed capacity so that memory pressure, GC triggering, and the paper's
out-of-memory experiment behave realistically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from ..errors import AideError, StaleObjectError
from .objectmodel import JObject


class HeapSpaceExhausted(AideError):
    """Internal signal: allocation does not fit; the VM should GC and retry.

    Never escapes the VM — callers of the public allocation API see
    :class:`~repro.errors.OutOfMemoryError` if the retry also fails.
    """

    def __init__(self, requested: int, free: int) -> None:
        super().__init__(f"need {requested} bytes, {free} free")
        self.requested = requested
        self.free = free


@dataclass
class HeapStats:
    """Cumulative allocation statistics for one heap."""

    allocations: int = 0
    frees: int = 0
    bytes_allocated: int = 0
    bytes_freed: int = 0
    peak_used: int = 0


class Heap:
    """Fixed-capacity heap holding live :class:`JObject` instances."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise AideError(f"heap capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.used = 0
        self._objects: Dict[int, JObject] = {}
        self.stats = HeapStats()

    # -- queries ------------------------------------------------------------

    @property
    def free(self) -> int:
        return self.capacity - self.used

    @property
    def free_fraction(self) -> float:
        return self.free / self.capacity

    @property
    def live_count(self) -> int:
        return len(self._objects)

    def contains(self, obj: JObject) -> bool:
        return obj.oid in self._objects

    def objects(self) -> Iterator[JObject]:
        """Snapshot iterator over live objects (safe to mutate during)."""
        return iter(list(self._objects.values()))

    def get(self, oid: int) -> JObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise StaleObjectError(f"no live object with oid {oid}") from None

    def fits(self, size: int) -> bool:
        return size <= self.free

    # -- mutation -----------------------------------------------------------

    def allocate(self, obj: JObject) -> None:
        """Charge ``obj`` against the heap, or signal exhaustion.

        Raises :class:`HeapSpaceExhausted` when the object does not fit;
        the VM catches that, collects, and retries.
        """
        size = obj.size_bytes
        if size > self.free:
            raise HeapSpaceExhausted(size, self.free)
        if obj.oid in self._objects:
            raise AideError(f"object {obj!r} already allocated on this heap")
        self._objects[obj.oid] = obj
        self.used += size
        self.stats.allocations += 1
        self.stats.bytes_allocated += size
        if self.used > self.stats.peak_used:
            self.stats.peak_used = self.used

    def release(self, obj: JObject) -> int:
        """Remove ``obj`` from the heap, returning the bytes reclaimed.

        Used both by the garbage collector (which also marks the object
        dead) and by migration (which moves the live object elsewhere).
        """
        if obj.oid not in self._objects:
            raise StaleObjectError(f"object {obj!r} is not on this heap")
        del self._objects[obj.oid]
        size = obj.size_bytes
        self.used -= size
        self.stats.frees += 1
        self.stats.bytes_freed += size
        return size

    def __repr__(self) -> str:
        return (
            f"Heap(used={self.used}/{self.capacity}, live={self.live_count})"
        )
