"""Execution hook interface.

The paper instruments the JVM at four points — method invocation, data
field access, object creation, and object deletion — plus the garbage
collector's free-memory reports.  :class:`ExecutionListener` is the
Python face of those hooks: the execution monitor, the trace recorder,
and tests all subscribe through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .gc import GCReport
from .objectmodel import JObject, MethodDef


@dataclass(frozen=True)
class InvokeRecord:
    """One completed method invocation."""

    caller_class: str
    caller_oid: Optional[int]
    callee_class: str
    callee_oid: Optional[int]
    method: str
    kind: str
    native_stateless: bool
    arg_bytes: int
    ret_bytes: int
    cpu_seconds: float
    caller_site: str
    exec_site: str
    remote: bool

    @property
    def is_native(self) -> bool:
        return self.kind == "native"


@dataclass(frozen=True)
class AccessRecord:
    """One data field access."""

    accessor_class: str
    accessor_oid: Optional[int]
    owner_class: str
    owner_oid: Optional[int]
    field: str
    value_bytes: int
    is_write: bool
    is_static: bool
    accessor_site: str
    exec_site: str
    remote: bool


class ExecutionListener:
    """Base class with no-op hook methods; subclass and override."""

    def on_alloc(self, obj: JObject, site: str) -> None:
        """An object or array was created on ``site``."""

    def on_free(self, obj: JObject) -> None:
        """An object was reclaimed by the collector."""

    def on_invoke(self, record: InvokeRecord) -> None:
        """A method invocation completed."""

    def on_invoke_enter(self, callee_class: str, method: MethodDef, site: str) -> None:
        """A method invocation is about to run its body."""

    def on_access(self, record: AccessRecord) -> None:
        """A field read or write completed."""

    def on_cpu(self, class_name: str, site: str, seconds: float) -> None:
        """Reference CPU seconds were charged to ``class_name``.

        This is how per-class execution time reaches the execution graph
        (paper Figure 9): time is attributed directly to the class whose
        method is on top of the stack, which equals gross time minus
        nested-call time by construction.
        """

    def on_gc_report(self, report: GCReport, site: str) -> None:
        """The collector on ``site`` finished a cycle."""

    def on_offload(self, class_names: List[str], nbytes: int, site_from: str,
                   site_to: str) -> None:
        """A partition of classes was migrated between sites."""


class HookFanout(ExecutionListener):
    """Broadcasts each hook to an ordered list of listeners."""

    def __init__(self) -> None:
        self.listeners: List[ExecutionListener] = []

    def add(self, listener: ExecutionListener) -> None:
        self.listeners.append(listener)

    def remove(self, listener: ExecutionListener) -> None:
        self.listeners.remove(listener)

    def on_alloc(self, obj: JObject, site: str) -> None:
        for listener in self.listeners:
            listener.on_alloc(obj, site)

    def on_free(self, obj: JObject) -> None:
        for listener in self.listeners:
            listener.on_free(obj)

    def on_invoke(self, record: InvokeRecord) -> None:
        for listener in self.listeners:
            listener.on_invoke(record)

    def on_invoke_enter(self, callee_class: str, method: MethodDef, site: str) -> None:
        for listener in self.listeners:
            listener.on_invoke_enter(callee_class, method, site)

    def on_access(self, record: AccessRecord) -> None:
        for listener in self.listeners:
            listener.on_access(record)

    def on_cpu(self, class_name: str, site: str, seconds: float) -> None:
        for listener in self.listeners:
            listener.on_cpu(class_name, site, seconds)

    def on_gc_report(self, report: GCReport, site: str) -> None:
        for listener in self.listeners:
            listener.on_gc_report(report, site)

    def on_offload(self, class_names: List[str], nbytes: int, site_from: str,
                   site_to: str) -> None:
        for listener in self.listeners:
            listener.on_offload(class_names, nbytes, site_from, site_to)
