"""Execution hook interface.

The paper instruments the JVM at four points — method invocation, data
field access, object creation, and object deletion — plus the garbage
collector's free-memory reports.  :class:`ExecutionListener` is the
Python face of those hooks: the execution monitor, the trace recorder,
and tests all subscribe through it.

Hook records are created for *every* guest interaction, so they are
plain ``__slots__`` classes rather than dataclasses: no per-instance
``__dict__``, and the cheapest constructor Python offers.
"""

from __future__ import annotations

from typing import List, Optional

from .gc import GCReport
from .objectmodel import JObject, MethodDef


class InvokeRecord:
    """One completed method invocation."""

    __slots__ = (
        "caller_class",
        "caller_oid",
        "callee_class",
        "callee_oid",
        "method",
        "kind",
        "native_stateless",
        "arg_bytes",
        "ret_bytes",
        "cpu_seconds",
        "caller_site",
        "exec_site",
        "remote",
    )

    def __init__(
        self,
        caller_class: str,
        caller_oid: Optional[int],
        callee_class: str,
        callee_oid: Optional[int],
        method: str,
        kind: str,
        native_stateless: bool,
        arg_bytes: int,
        ret_bytes: int,
        cpu_seconds: float,
        caller_site: str,
        exec_site: str,
        remote: bool,
    ) -> None:
        self.caller_class = caller_class
        self.caller_oid = caller_oid
        self.callee_class = callee_class
        self.callee_oid = callee_oid
        self.method = method
        self.kind = kind
        self.native_stateless = native_stateless
        self.arg_bytes = arg_bytes
        self.ret_bytes = ret_bytes
        self.cpu_seconds = cpu_seconds
        self.caller_site = caller_site
        self.exec_site = exec_site
        self.remote = remote

    @property
    def is_native(self) -> bool:
        return self.kind == "native"

    def _fields(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InvokeRecord):
            return NotImplemented
        return self._fields() == other._fields()

    def __hash__(self) -> int:
        return hash(self._fields())

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"InvokeRecord({fields})"


class AccessRecord:
    """One data field access."""

    __slots__ = (
        "accessor_class",
        "accessor_oid",
        "owner_class",
        "owner_oid",
        "field",
        "value_bytes",
        "is_write",
        "is_static",
        "accessor_site",
        "exec_site",
        "remote",
        "cached",
    )

    def __init__(
        self,
        accessor_class: str,
        accessor_oid: Optional[int],
        owner_class: str,
        owner_oid: Optional[int],
        field: str,
        value_bytes: int,
        is_write: bool,
        is_static: bool,
        accessor_site: str,
        exec_site: str,
        remote: bool,
        cached: bool = False,
    ) -> None:
        self.accessor_class = accessor_class
        self.accessor_oid = accessor_oid
        self.owner_class = owner_class
        self.owner_oid = owner_oid
        self.field = field
        self.value_bytes = value_bytes
        self.is_write = is_write
        self.is_static = is_static
        self.accessor_site = accessor_site
        self.exec_site = exec_site
        self.remote = remote
        #: True when a remote read was served from the accessor site's
        #: remote-read cache: logically remote, zero bytes on the wire.
        self.cached = cached

    def _fields(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessRecord):
            return NotImplemented
        return self._fields() == other._fields()

    def __hash__(self) -> int:
        return hash(self._fields())

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"AccessRecord({fields})"


class ExecutionListener:
    """Base class with no-op hook methods; subclass and override."""

    def on_alloc(self, obj: JObject, site: str) -> None:
        """An object or array was created on ``site``."""

    def on_free(self, obj: JObject) -> None:
        """An object was reclaimed by the collector."""

    def on_invoke(self, record: InvokeRecord) -> None:
        """A method invocation completed."""

    def on_invoke_enter(self, callee_class: str, method: MethodDef, site: str) -> None:
        """A method invocation is about to run its body."""

    def on_access(self, record: AccessRecord) -> None:
        """A field read or write completed."""

    def on_cpu(self, class_name: str, site: str, seconds: float) -> None:
        """Reference CPU seconds were charged to ``class_name``.

        This is how per-class execution time reaches the execution graph
        (paper Figure 9): time is attributed directly to the class whose
        method is on top of the stack, which equals gross time minus
        nested-call time by construction.
        """

    def on_gc_report(self, report: GCReport, site: str) -> None:
        """The collector on ``site`` finished a cycle."""

    def on_offload(self, class_names: List[str], nbytes: int, site_from: str,
                   site_to: str) -> None:
        """A partition of classes was migrated between sites."""


class HookFanout(ExecutionListener):
    """Broadcasts each hook to an ordered list of listeners.

    The common emulator configuration subscribes exactly one listener,
    so that case dispatches directly to it instead of looping; ``_solo``
    caches the listener whenever the list has exactly one entry.
    """

    def __init__(self) -> None:
        self.listeners: List[ExecutionListener] = []
        self._solo: Optional[ExecutionListener] = None

    def add(self, listener: ExecutionListener) -> None:
        self.listeners.append(listener)
        self._solo = listener if len(self.listeners) == 1 else None

    def remove(self, listener: ExecutionListener) -> None:
        self.listeners.remove(listener)
        self._solo = self.listeners[0] if len(self.listeners) == 1 else None

    def on_alloc(self, obj: JObject, site: str) -> None:
        solo = self._solo
        if solo is not None:
            solo.on_alloc(obj, site)
            return
        for listener in self.listeners:
            listener.on_alloc(obj, site)

    def on_free(self, obj: JObject) -> None:
        solo = self._solo
        if solo is not None:
            solo.on_free(obj)
            return
        for listener in self.listeners:
            listener.on_free(obj)

    def on_invoke(self, record: InvokeRecord) -> None:
        solo = self._solo
        if solo is not None:
            solo.on_invoke(record)
            return
        for listener in self.listeners:
            listener.on_invoke(record)

    def on_invoke_enter(self, callee_class: str, method: MethodDef, site: str) -> None:
        solo = self._solo
        if solo is not None:
            solo.on_invoke_enter(callee_class, method, site)
            return
        for listener in self.listeners:
            listener.on_invoke_enter(callee_class, method, site)

    def on_access(self, record: AccessRecord) -> None:
        solo = self._solo
        if solo is not None:
            solo.on_access(record)
            return
        for listener in self.listeners:
            listener.on_access(record)

    def on_cpu(self, class_name: str, site: str, seconds: float) -> None:
        solo = self._solo
        if solo is not None:
            solo.on_cpu(class_name, site, seconds)
            return
        for listener in self.listeners:
            listener.on_cpu(class_name, site, seconds)

    def on_gc_report(self, report: GCReport, site: str) -> None:
        solo = self._solo
        if solo is not None:
            solo.on_gc_report(report, site)
            return
        for listener in self.listeners:
            listener.on_gc_report(report, site)

    def on_offload(self, class_names: List[str], nbytes: int, site_from: str,
                   site_to: str) -> None:
        solo = self._solo
        if solo is not None:
            solo.on_offload(class_names, nbytes, site_from, site_to)
            return
        for listener in self.listeners:
            listener.on_offload(class_names, nbytes, site_from, site_to)
