"""Class registry shared between VMs.

The paper simplifies its platform by assuming both VMs have access to
the application's bytecodes, giving them common knowledge about every
class.  We model that directly: a single :class:`ClassRegistry` instance
is shared by the client and surrogate VM, so a class registered once is
loadable on both sides.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from ..errors import ConfigurationError, NoSuchClassError
from .objectmodel import (
    ClassBuilder,
    ClassDef,
    SLOT_SIZES,
    array_class_name,
    suggest_name,
)


class ClassRegistry:
    """Name-to-definition map for all guest classes in a session."""

    def __init__(self) -> None:
        self._classes: Dict[str, ClassDef] = {}
        self._register_array_classes()

    def _register_array_classes(self) -> None:
        """Pre-register the primitive and reference array classes.

        Array classes have no methods and no declared fields; their
        per-instance size comes from :class:`~repro.vm.objectmodel.JArray`.
        """
        for element_type in SLOT_SIZES:
            name = array_class_name(element_type)
            self._classes[name] = ClassDef(
                name, is_array_class=True, category="array"
            )

    # -- registration ---------------------------------------------------------

    def register(self, cls: ClassDef) -> ClassDef:
        if cls.name in self._classes:
            raise ConfigurationError(f"class {cls.name!r} is already registered")
        self._classes[cls.name] = cls
        return cls

    def register_all(self, classes: Iterable[ClassDef]) -> None:
        for cls in classes:
            self.register(cls)

    def define(self, name: str, category: str = "app") -> ClassBuilder:
        """Start a fluent class definition that registers on ``build``.

        >>> registry = ClassRegistry()
        >>> cls = registry.define("a.B").field("x", "int").register()
        >>> registry.lookup("a.B") is cls
        True
        """
        return _RegisteringBuilder(self, name, category)

    # -- lookup ------------------------------------------------------------

    def lookup(self, name: str) -> ClassDef:
        try:
            return self._classes[name]
        except KeyError:
            hint = suggest_name(name, self._classes)
            raise NoSuchClassError(f"{name}{hint}") from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def array_class(self, element_type: str) -> ClassDef:
        return self.lookup(array_class_name(element_type))

    def class_names(self) -> List[str]:
        """All registered class names, in registration order."""
        return list(self._classes)

    def app_classes(self) -> List[ClassDef]:
        """Every non-array class, in registration order."""
        return [c for c in self._classes.values() if not c.is_array_class]

    def pinned_class_names(self, stateless_natives_ok: bool = False) -> List[str]:
        """Classes that must stay on the client.

        With ``stateless_natives_ok`` (the section 5.2 enhancement) only
        classes containing *stateful* natives are pinned.
        """
        pinned = []
        for cls in self._classes.values():
            if stateless_natives_ok:
                if cls.has_stateful_natives:
                    pinned.append(cls.name)
            elif cls.has_native_methods:
                pinned.append(cls.name)
        return pinned

    def __iter__(self) -> Iterator[ClassDef]:
        return iter(self._classes.values())

    def __len__(self) -> int:
        return len(self._classes)


class _RegisteringBuilder(ClassBuilder):
    """A :class:`ClassBuilder` that can register its product directly."""

    def __init__(self, registry: ClassRegistry, name: str, category: str) -> None:
        super().__init__(name, category=category)
        self._registry = registry

    def register(self) -> ClassDef:
        return self._registry.register(self.build())
