"""Guest object model: classes, fields, methods, objects, and arrays.

This is the Python analogue of the class/object machinery inside the
paper's modified Chai JVM.  Guest applications define :class:`ClassDef`
instances (via :class:`ClassBuilder`) and allocate :class:`JObject` /
:class:`JArray` instances through the VM, which accounts for every byte
so that the heap, garbage collector, and offloading policies see a
realistic memory picture.
"""

from __future__ import annotations

import difflib
import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError, NoSuchFieldError, NoSuchMethodError


def suggest_name(name: str, candidates: Iterable[str]) -> str:
    """A ``did you mean …?`` suffix for a failed member lookup.

    Shared by the runtime's :class:`NoSuchFieldError` /
    :class:`NoSuchMethodError` messages and the static analyzer, which
    consults the same name tables, so a typo reads the same whether the
    code ran or was only linted.  Empty when nothing is close.
    """
    matches = difflib.get_close_matches(name, list(candidates), n=1,
                                        cutoff=0.6)
    return f" (did you mean {matches[0]!r}?)" if matches else ""

#: Size in bytes of one field slot, by declared field type.  These mirror
#: typical JVM sizes (references are 8 bytes on a 64-bit heap).
SLOT_SIZES: Dict[str, int] = {
    "ref": 8,
    "int": 8,
    "long": 8,
    "float": 8,
    "double": 8,
    "bool": 1,
    "byte": 1,
    "char": 2,
    "short": 2,
}

#: Fixed per-object header charge (mark word + class pointer).
OBJECT_HEADER_BYTES = 16

#: Arrays additionally store their length and element type.
ARRAY_HEADER_BYTES = 24

_oid_counter = itertools.count(1)


def next_oid() -> int:
    """Allocate a globally unique object id.

    Object ids are unique per *process* rather than per VM; the RPC
    reference-mapping layer still maintains per-VM namespaces on top of
    them, exactly because the paper's VMs cannot interpret each other's
    references directly.
    """
    return next(_oid_counter)


class MethodKind(enum.Enum):
    """How a method executes, which determines where it may execute.

    * ``INSTANCE`` methods run on the VM that hosts the receiver object.
    * ``STATIC`` methods (pure Java, class-associated) may run on either
      VM because both VMs share the application bytecodes.
    * ``NATIVE`` methods are implemented outside the guest language and
      are pinned to the client VM unless annotated stateless and the
      stateless-native enhancement is enabled.
    """

    INSTANCE = "instance"
    STATIC = "static"
    NATIVE = "native"


@dataclass(frozen=True)
class FieldDef:
    """Declaration of one guest field."""

    name: str
    type_name: str = "ref"
    static: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        if self.type_name not in SLOT_SIZES:
            raise ConfigurationError(
                f"unknown field type {self.type_name!r} for field {self.name!r}; "
                f"expected one of {sorted(SLOT_SIZES)}"
            )

    @property
    def slot_size(self) -> int:
        return SLOT_SIZES[self.type_name]


@dataclass(frozen=True)
class MethodDef:
    """Declaration of one guest method.

    ``func`` receives ``(ctx, self_obj, *args)`` where ``ctx`` is the
    :class:`~repro.vm.context.ExecutionContext`; for static and native
    methods ``self_obj`` is ``None``.  ``cpu_cost`` is reference CPU
    seconds charged on entry; data-dependent cost is added by the body
    via ``ctx.work``.
    """

    name: str
    kind: MethodKind = MethodKind.INSTANCE
    func: Optional[Callable[..., Any]] = None
    cpu_cost: float = 0.0
    #: For NATIVE methods: True when the operation is stateless /
    #: idempotent (math, string copy) and therefore eligible for the
    #: stateless-native enhancement of section 5.2.
    stateless: bool = False

    def __post_init__(self) -> None:
        if self.cpu_cost < 0:
            raise ConfigurationError(
                f"method {self.name!r} has negative cpu_cost {self.cpu_cost}"
            )
        if self.stateless and self.kind is not MethodKind.NATIVE:
            raise ConfigurationError(
                f"method {self.name!r}: only native methods carry the "
                "stateless annotation"
            )

    @property
    def is_native(self) -> bool:
        return self.kind is MethodKind.NATIVE

    @property
    def is_static(self) -> bool:
        return self.kind is MethodKind.STATIC

    def source_location(self) -> Optional[Tuple[str, int]]:
        """``(filename, first line)`` of the method body, if it has one.

        Unwraps the registration lambdas guest apps commonly use, so
        the static analyzer and diagnostics point at real source.
        Returns ``None`` for declaration-only methods and bodies
        without Python code objects (builtins, C functions).
        """
        func = self.func
        if func is None:
            return None
        code = getattr(func, "__code__", None)
        if code is None:
            return None
        return code.co_filename, code.co_firstlineno


class ClassDef:
    """A guest class: field layout, method table, and placement traits."""

    def __init__(
        self,
        name: str,
        fields: Iterable[FieldDef] = (),
        methods: Iterable[MethodDef] = (),
        superclass: Optional["ClassDef"] = None,
        is_array_class: bool = False,
        category: str = "app",
    ) -> None:
        if not name:
            raise ConfigurationError("class name must be non-empty")
        self.name = name
        self.superclass = superclass
        self.is_array_class = is_array_class
        self.category = category
        self._fields: Dict[str, FieldDef] = {}
        self._methods: Dict[str, MethodDef] = {}
        if superclass is not None:
            self._fields.update(superclass._fields)
            self._methods.update(superclass._methods)
        for fdef in fields:
            if fdef.name in self._fields and not superclass:
                raise ConfigurationError(
                    f"duplicate field {fdef.name!r} on class {name!r}"
                )
            self._fields[fdef.name] = fdef
        for mdef in methods:
            self._methods[mdef.name] = mdef
        #: Static (per-class) storage; access is pinned to the client VM.
        self.static_values: Dict[str, Any] = {
            f.name: f.default for f in self._fields.values() if f.static
        }

    # -- lookup -----------------------------------------------------------

    def field(self, name: str) -> FieldDef:
        try:
            return self._fields[name]
        except KeyError:
            hint = suggest_name(name, self._fields)
            raise NoSuchFieldError(f"{self.name}.{name}{hint}") from None

    def method(self, name: str) -> MethodDef:
        try:
            return self._methods[name]
        except KeyError:
            hint = suggest_name(name, self._methods)
            raise NoSuchMethodError(f"{self.name}.{name}{hint}") from None

    def has_field(self, name: str) -> bool:
        return name in self._fields

    def has_method(self, name: str) -> bool:
        return name in self._methods

    def fields(self) -> Iterator[FieldDef]:
        return iter(self._fields.values())

    def methods(self) -> Iterator[MethodDef]:
        return iter(self._methods.values())

    def field_names(self) -> List[str]:
        """Declared field names, in declaration order."""
        return list(self._fields)

    def method_names(self) -> List[str]:
        """Declared method names, in declaration order."""
        return list(self._methods)

    # -- placement traits --------------------------------------------------

    @property
    def has_native_methods(self) -> bool:
        return any(m.is_native for m in self._methods.values())

    @property
    def has_stateful_natives(self) -> bool:
        return any(m.is_native and not m.stateless for m in self._methods.values())

    @property
    def offloadable(self) -> bool:
        """Whether instances of this class may leave the client.

        The paper's heuristic seeds the client partition with every class
        that contains native methods; we refine that slightly by keeping
        only classes with *stateful* natives pinned, because the paper's
        own section 5.2 relaxes stateless natives.  A class whose natives
        are all stateless is still pinned under the *initial* policy; the
        distinction is applied by the partitioner which consults
        :attr:`has_native_methods` or :attr:`has_stateful_natives`
        depending on the enhancement flags.
        """
        return not self.has_native_methods

    @property
    def instance_fields_size(self) -> int:
        return sum(f.slot_size for f in self._fields.values() if not f.static)

    @property
    def instance_size(self) -> int:
        """Heap footprint of one instance (header + field slots)."""
        return OBJECT_HEADER_BYTES + self.instance_fields_size

    def __repr__(self) -> str:
        return f"ClassDef({self.name!r})"


class JObject:
    """One live guest object.

    ``home`` names the VM currently hosting the object; the distributed
    runtime moves objects by rebinding ``home`` (and the heaps).  Guest
    code never touches ``home`` directly.
    """

    __slots__ = ("cls", "oid", "values", "home", "alive", "pinned")

    def __init__(self, cls: ClassDef, home: str) -> None:
        self.cls = cls
        self.oid = next_oid()
        self.values: Dict[str, Any] = {
            f.name: f.default for f in cls.fields() if not f.static
        }
        self.home = home
        self.alive = True
        #: Pinned objects survive GC even when locally unreachable;
        #: used for remote-export pins by the distributed GC.
        self.pinned = False

    @property
    def size_bytes(self) -> int:
        return self.cls.instance_size

    @property
    def class_name(self) -> str:
        return self.cls.name

    def references(self) -> List["JObject"]:
        """Guest objects directly reachable from this object's fields."""
        return [v for v in self.values.values() if isinstance(v, JObject)]

    def __repr__(self) -> str:
        status = "live" if self.alive else "dead"
        return f"<{self.cls.name}#{self.oid} {status}@{self.home}>"


class JArray(JObject):
    """A primitive or reference array.

    Arrays are first-class objects in the execution graph; the paper's
    "Array" enhancement (section 5.2) allows primitive integer arrays to
    be *placed* individually instead of at class granularity, which is
    why arrays keep their own identity here rather than being folded
    into a container object.
    """

    __slots__ = ("element_type", "length", "data")

    def __init__(
        self,
        cls: ClassDef,
        home: str,
        element_type: str,
        length: int,
        data: Optional[list] = None,
    ) -> None:
        if element_type not in SLOT_SIZES:
            raise ConfigurationError(f"unknown array element type {element_type!r}")
        if length < 0:
            raise ConfigurationError("array length must be non-negative")
        super().__init__(cls, home)
        self.element_type = element_type
        self.length = length
        #: Optional materialised contents; most workloads only need the
        #: size accounting, so contents default to absent.
        self.data = data

    @property
    def size_bytes(self) -> int:
        return ARRAY_HEADER_BYTES + self.length * SLOT_SIZES[self.element_type]

    @property
    def is_primitive(self) -> bool:
        return self.element_type != "ref"

    def references(self) -> List[JObject]:
        if self.element_type != "ref" or self.data is None:
            return []
        return [v for v in self.data if isinstance(v, JObject)]

    def __repr__(self) -> str:
        return f"<{self.element_type}[{self.length}]#{self.oid}@{self.home}>"


def array_class_name(element_type: str) -> str:
    """Canonical class name for arrays of the given element type.

    >>> array_class_name("int")
    'int[]'
    """
    return f"{element_type}[]"


class ClassBuilder:
    """Fluent helper for declaring guest classes.

    >>> cls = (ClassBuilder("editor.Document")
    ...        .field("buffer", "ref")
    ...        .field("length", "int")
    ...        .method("append", cpu_cost=1e-6)
    ...        .build())
    >>> cls.instance_size
    32
    """

    def __init__(self, name: str, category: str = "app") -> None:
        self._name = name
        self._category = category
        self._fields: List[FieldDef] = []
        self._methods: List[MethodDef] = []
        self._superclass: Optional[ClassDef] = None

    def field(
        self, name: str, type_name: str = "ref", static: bool = False, default: Any = None
    ) -> "ClassBuilder":
        self._fields.append(FieldDef(name, type_name, static=static, default=default))
        return self

    def method(
        self,
        name: str,
        func: Optional[Callable[..., Any]] = None,
        kind: MethodKind = MethodKind.INSTANCE,
        cpu_cost: float = 0.0,
        stateless: bool = False,
    ) -> "ClassBuilder":
        self._methods.append(
            MethodDef(name, kind=kind, func=func, cpu_cost=cpu_cost, stateless=stateless)
        )
        return self

    def static_method(
        self, name: str, func: Optional[Callable[..., Any]] = None, cpu_cost: float = 0.0
    ) -> "ClassBuilder":
        return self.method(name, func=func, kind=MethodKind.STATIC, cpu_cost=cpu_cost)

    def native_method(
        self,
        name: str,
        func: Optional[Callable[..., Any]] = None,
        cpu_cost: float = 0.0,
        stateless: bool = False,
    ) -> "ClassBuilder":
        return self.method(
            name, func=func, kind=MethodKind.NATIVE, cpu_cost=cpu_cost, stateless=stateless
        )

    def extends(self, superclass: ClassDef) -> "ClassBuilder":
        self._superclass = superclass
        return self

    def build(self) -> ClassDef:
        return ClassDef(
            self._name,
            fields=self._fields,
            methods=self._methods,
            superclass=self._superclass,
            category=self._category,
        )
