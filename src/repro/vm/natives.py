"""Standard guest library with native methods.

The paper's applications lean on the Java standard library, whose native
methods are the crux of section 5.2: natives are pinned to the client
unless they are stateless (math, string copy) and the stateless-native
enhancement is active.  This module installs a compact analogue of that
library: math functions, string utilities, host properties, file I/O,
and the graphical framebuffer that can never leave the client.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from .classloader import ClassRegistry
from .objectmodel import ClassBuilder, JObject

MATH_CLASS = "java.lang.Math"
SYSTEM_CLASS = "java.lang.System"
STRING_CLASS = "java.lang.String"
INTEGER_CLASS = "java.lang.Integer"
FILE_CLASS = "java.io.File"
FRAMEBUFFER_CLASS = "ui.Framebuffer"
CONSOLE_CLASS = "ui.Console"

#: Reference CPU seconds for one trivial native call.
_TINY = 0.2e-6
#: Reference CPU seconds for a transcendental math call.
_MATH_COST = 0.5e-6


def _math_sin(ctx, _target, x: float) -> float:
    return math.sin(x)


def _math_cos(ctx, _target, x: float) -> float:
    return math.cos(x)


def _math_sqrt(ctx, _target, x: float) -> float:
    return math.sqrt(x) if x >= 0 else 0.0


def _math_pow(ctx, _target, x: float, y: float) -> float:
    try:
        return math.pow(x, y)
    except (OverflowError, ValueError):
        return 0.0


def _math_atan2(ctx, _target, y: float, x: float) -> float:
    return math.atan2(y, x)


def _math_floor(ctx, _target, x: float) -> float:
    return float(math.floor(x))


def _string_copy(ctx, target: JObject) -> JObject:
    """Stateless native: duplicate a guest string object."""
    payload = target.values.get("value") or ""
    copy = ctx.new(STRING_CLASS, value=payload, length=len(payload))
    return copy


def _string_length(ctx, target: JObject) -> int:
    return target.values.get("length") or 0


def _system_get_property(ctx, _target, key: str) -> Optional[str]:
    properties = ctx.get_static(SYSTEM_CLASS, "properties") or {}
    return properties.get(key)


def _system_current_millis(ctx, _target) -> int:
    """Host-specific native: reads the *client* device's clock."""
    return int(ctx.clock.now * 1000)


def _system_arraycopy(ctx, _target, src, dst, count: int) -> None:
    ctx.array_read(src, count)
    ctx.array_write(dst, count)
    ctx.work(1e-9 * count)


def _file_read(ctx, target: JObject, nbytes: int) -> int:
    """Stateful native: local filesystem access on the client."""
    ctx.work(2e-9 * nbytes)
    return nbytes


def _file_write(ctx, target: JObject, nbytes: int) -> int:
    ctx.work(2e-9 * nbytes)
    return nbytes


def _fb_draw(ctx, target: JObject, pixels: int) -> None:
    """Stateful native: only the client owns the physical framebuffer."""
    ctx.work(1e-9 * pixels)


def _fb_flush(ctx, target: JObject) -> None:
    ctx.work(5e-6)


def _console_print(ctx, _target, text: str) -> None:
    ctx.work(_TINY)


def build_math_class() -> ClassBuilder:
    builder = ClassBuilder(MATH_CLASS, category="library")
    for name, func in [
        ("sin", _math_sin),
        ("cos", _math_cos),
        ("sqrt", _math_sqrt),
        ("pow", _math_pow),
        ("atan2", _math_atan2),
        ("floor", _math_floor),
    ]:
        builder.native_method(name, func=func, cpu_cost=_MATH_COST, stateless=True)
    return builder


def install_standard_library(registry: ClassRegistry) -> None:
    """Register the standard library classes into ``registry``."""
    registry.register(build_math_class().build())

    registry.register(
        ClassBuilder(SYSTEM_CLASS, category="library")
        .field("properties", "ref", static=True,
               default={"os.name": "guest-ce", "vm.vendor": "repro"})
        .native_method("getProperty", func=_system_get_property,
                       cpu_cost=_TINY)
        .native_method("currentTimeMillis", func=_system_current_millis,
                       cpu_cost=_TINY)
        .native_method("arraycopy", func=_system_arraycopy,
                       cpu_cost=_TINY, stateless=True)
        .build()
    )

    registry.register(
        ClassBuilder(STRING_CLASS, category="library")
        .field("value", "ref")
        .field("length", "int")
        .native_method("copy", func=_string_copy, cpu_cost=_TINY, stateless=True)
        .method("lengthOf", func=_string_length, cpu_cost=_TINY)
        .build()
    )

    registry.register(
        ClassBuilder(INTEGER_CLASS, category="library")
        .field("value", "int")
        .method("intValue",
                func=lambda ctx, target: target.values.get("value") or 0,
                cpu_cost=_TINY)
        .build()
    )

    registry.register(
        ClassBuilder(FILE_CLASS, category="library")
        .field("path", "ref")
        .native_method("read", func=_file_read, cpu_cost=_TINY)
        .native_method("write", func=_file_write, cpu_cost=_TINY)
        .build()
    )

    registry.register(
        ClassBuilder(FRAMEBUFFER_CLASS, category="library")
        .field("width", "int")
        .field("height", "int")
        .native_method("draw", func=_fb_draw, cpu_cost=_TINY)
        .native_method("flush", func=_fb_flush, cpu_cost=_TINY)
        .build()
    )

    registry.register(
        ClassBuilder(CONSOLE_CLASS, category="library")
        .native_method("print", func=_console_print, cpu_cost=_TINY)
        .build()
    )


def new_string(ctx, text: str) -> Any:
    """Allocate a guest string wrapping ``text`` on the current site."""
    return ctx.new(STRING_CLASS, value=text, length=len(text))


def new_integer(ctx, value: int) -> Any:
    """Allocate a boxed integer on the current site."""
    return ctx.new(INTEGER_CLASS, value=value)
