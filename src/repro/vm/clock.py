"""Virtual time.

All wall-clock behaviour in the library is driven by a shared
:class:`VirtualClock`: guest CPU work, network transfers, and GC pauses
advance it deterministically, so identical runs produce identical
timings.  This replaces the paper's ``gettimeofday()`` sampling with an
exact accounting (a substitution documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, List

from ..errors import AideError


class VirtualClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise AideError("clock cannot start before time zero")
        self._now = start
        self._listeners: List[Callable[[float, float], None]] = []

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock, returning the new time.

        Zero-length advances are permitted (and common: free operations
        simply do not move time).
        """
        if seconds < 0:
            raise AideError(f"cannot advance clock by negative {seconds}")
        if seconds == 0:
            return self._now
        previous = self._now
        self._now += seconds
        for listener in self._listeners:
            listener(previous, self._now)
        return self._now

    def subscribe(self, listener: Callable[[float, float], None]) -> None:
        """Register ``listener(old_time, new_time)`` for every advance."""
        self._listeners.append(listener)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


class Stopwatch:
    """Measures elapsed virtual time between two points.

    >>> clock = VirtualClock()
    >>> watch = Stopwatch(clock)
    >>> _ = clock.advance(1.5)
    >>> watch.elapsed
    1.5
    """

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._start = clock.now

    @property
    def elapsed(self) -> float:
        return self._clock.now - self._start

    def restart(self) -> float:
        """Reset the start point, returning the time that had elapsed."""
        elapsed = self.elapsed
        self._start = self._clock.now
        return elapsed
