"""Guest virtual machine: object model, heap, GC, and execution hooks.

This package is the Python analogue of the paper's modified Chai VM —
the substrate on which the AIDE monitoring/partitioning/offloading
modules operate.
"""

from .classloader import ClassRegistry
from .clock import Stopwatch, VirtualClock
from .context import ExecutionContext, Runtime, SingleVMRuntime
from .gc import GCReport, GCStats, MarkSweepCollector
from .heap import Heap, HeapStats
from .hooks import AccessRecord, ExecutionListener, HookFanout, InvokeRecord
from .natives import install_standard_library, new_integer, new_string
from .objectmodel import (
    ClassBuilder,
    ClassDef,
    FieldDef,
    JArray,
    JObject,
    MethodDef,
    MethodKind,
    array_class_name,
)
from .session import CLIENT_SITE, LocalSession
from .vm import VirtualMachine

__all__ = [
    "AccessRecord",
    "CLIENT_SITE",
    "ClassBuilder",
    "ClassDef",
    "ClassRegistry",
    "ExecutionContext",
    "ExecutionListener",
    "FieldDef",
    "GCReport",
    "GCStats",
    "Heap",
    "HeapStats",
    "HookFanout",
    "InvokeRecord",
    "JArray",
    "JObject",
    "LocalSession",
    "MarkSweepCollector",
    "MethodDef",
    "MethodKind",
    "Runtime",
    "SingleVMRuntime",
    "Stopwatch",
    "VirtualClock",
    "VirtualMachine",
    "array_class_name",
    "install_standard_library",
    "new_integer",
    "new_string",
]
