"""The guest virtual machine.

One :class:`VirtualMachine` plays the role of one (modified) Chai VM in
the paper: it owns a heap and collector, hosts guest objects, and keeps
named roots.  It knows nothing about partitioning or networking — those
concerns live in the execution context and the distributed runtime, just
as the paper's three AIDE modules sit beside the VM rather than inside
its interpreter loop.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from ..config import VMConfig
from ..errors import OutOfMemoryError, StaleObjectError
from .classloader import ClassRegistry
from .clock import VirtualClock
from .gc import GCReport, MarkSweepCollector
from .heap import Heap, HeapSpaceExhausted
from .objectmodel import ClassDef, JArray, JObject


class VirtualMachine:
    """A single guest VM bound to a device profile."""

    def __init__(
        self,
        name: str,
        config: VMConfig,
        registry: ClassRegistry,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.name = name
        self.config = config
        self.registry = registry
        self.clock = clock if clock is not None else VirtualClock()
        self.heap = Heap(config.device.heap_capacity)
        self.collector = MarkSweepCollector(
            self.heap,
            config.gc,
            root_provider=self._gc_roots,
            charge_pause=self._charge_gc_pause,
        )
        self._named_roots: Dict[str, JObject] = {}
        #: Extra root providers (the execution context registers its frame
        #: stack here so in-flight locals survive collection).
        self._root_sources: List[Callable[[], Iterable[JObject]]] = []

    # -- device-time accounting -----------------------------------------------

    @property
    def device(self):
        return self.config.device

    def charge_cpu(self, reference_seconds: float) -> float:
        """Advance the clock by device-scaled CPU time; return wall time."""
        wall = self.device.scaled(reference_seconds)
        self.clock.advance(wall)
        return wall

    def _charge_gc_pause(self, pause_seconds: float) -> None:
        self.clock.advance(self.device.scaled(pause_seconds))

    # -- roots -------------------------------------------------------------

    def set_root(self, name: str, obj: Optional[JObject]) -> None:
        """Install (or, with ``None``, remove) a named GC root."""
        if obj is None:
            self._named_roots.pop(name, None)
        else:
            self._named_roots[name] = obj

    def get_root(self, name: str) -> Optional[JObject]:
        return self._named_roots.get(name)

    def add_root_source(self, source: Callable[[], Iterable[JObject]]) -> None:
        self._root_sources.append(source)

    def local_roots(self) -> List[JObject]:
        """Named roots plus static reference fields (no root sources).

        Used by the distributed GC when one VM needs the *direct* roots
        of its peer without re-entering the peer's own cross-heap
        scanning (which would recurse).
        """
        roots: List[JObject] = list(self._named_roots.values())
        for cls in self.registry:
            for value in cls.static_values.values():
                if isinstance(value, JObject):
                    roots.append(value)
        return roots

    def _gc_roots(self) -> Iterable[JObject]:
        roots = self.local_roots()
        for source in self._root_sources:
            roots.extend(source())
        return roots

    # -- allocation -----------------------------------------------------------

    def allocate(self, obj: JObject) -> JObject:
        """Place ``obj`` on this heap, collecting (once) under pressure.

        Mirrors the JVM contract: an allocation that still does not fit
        after a full collection raises ``OutOfMemoryError`` into the
        guest.  This is exactly the failure the paper's JavaNote
        experiment provokes on the unmodified VM.
        """
        try:
            self.heap.allocate(obj)
        except HeapSpaceExhausted:
            self.collector.collect("space-exhausted")
            try:
                self.heap.allocate(obj)
            except HeapSpaceExhausted as exc:
                raise OutOfMemoryError(
                    requested=exc.requested,
                    free=self.heap.free,
                    capacity=self.heap.capacity,
                ) from None
        obj.home = self.name
        self.collector.note_allocation(obj.size_bytes)
        return obj

    def new_instance(self, cls: ClassDef) -> JObject:
        return self.allocate(JObject(cls, home=self.name))

    def new_array(
        self, element_type: str, length: int, data: Optional[list] = None
    ) -> JArray:
        cls = self.registry.array_class(element_type)
        return self.allocate(
            JArray(cls, home=self.name, element_type=element_type,
                   length=length, data=data)
        )

    # -- migration support ------------------------------------------------------

    def evict(self, obj: JObject) -> int:
        """Remove a live object from this heap so it can move elsewhere."""
        if obj.home != self.name:
            raise StaleObjectError(
                f"{obj!r} is homed on {obj.home!r}, not {self.name!r}"
            )
        return self.heap.release(obj)

    def adopt(self, obj: JObject) -> None:
        """Receive a migrated object onto this heap.

        Unlike :meth:`allocate`, adoption raises ``OutOfMemoryError``
        without retrying — migration decisions are made by the
        partitioner, which already checked capacity.
        """
        try:
            self.heap.allocate(obj)
        except HeapSpaceExhausted:
            self.collector.collect("migration-pressure")
            try:
                self.heap.allocate(obj)
            except HeapSpaceExhausted as exc:
                raise OutOfMemoryError(
                    requested=exc.requested,
                    free=self.heap.free,
                    capacity=self.heap.capacity,
                ) from None
        obj.home = self.name

    # -- GC facade ------------------------------------------------------------

    def collect_garbage(self, reason: str = "explicit") -> GCReport:
        return self.collector.collect(reason)

    def maybe_collect(self) -> Optional[GCReport]:
        return self.collector.maybe_collect()

    # -- static storage (pinned to the client by the routing layer) -------------

    def get_static(self, class_name: str, field_name: str) -> Any:
        cls = self.registry.lookup(class_name)
        fdef = cls.field(field_name)
        if not fdef.static:
            raise StaleObjectError(
                f"{class_name}.{field_name} is not a static field"
            )
        return cls.static_values.get(field_name)

    def set_static(self, class_name: str, field_name: str, value: Any) -> None:
        cls = self.registry.lookup(class_name)
        fdef = cls.field(field_name)
        if not fdef.static:
            raise StaleObjectError(
                f"{class_name}.{field_name} is not a static field"
            )
        cls.static_values[field_name] = value

    def __repr__(self) -> str:
        return f"VirtualMachine({self.name!r}, {self.heap!r})"
