"""Single-VM session: a standalone client device running a guest app.

This is the "unmodified VM" configuration used by the paper as the
baseline (and for provoking the JavaNote out-of-memory failure), and
also the configuration from which execution traces are recorded for the
emulator.  The two-VM distributed session lives in
:mod:`repro.platform.platform`.
"""

from __future__ import annotations

from typing import Optional

from ..config import EnhancementFlags, VMConfig
from .classloader import ClassRegistry
from .clock import VirtualClock
from .context import ExecutionContext, SingleVMRuntime
from .hooks import ExecutionListener, HookFanout
from .natives import install_standard_library
from .vm import VirtualMachine

#: Site name of the client device in every session.
CLIENT_SITE = "client"


class LocalSession:
    """One client VM, its registry, clock, and execution context."""

    def __init__(
        self,
        config: Optional[VMConfig] = None,
        registry: Optional[ClassRegistry] = None,
        flags: EnhancementFlags = EnhancementFlags(),
        install_stdlib: bool = True,
    ) -> None:
        self.config = config if config is not None else VMConfig()
        self.clock = VirtualClock()
        if registry is None:
            registry = ClassRegistry()
            if install_stdlib:
                install_standard_library(registry)
        self.registry = registry
        self.vm = VirtualMachine(
            CLIENT_SITE, self.config, self.registry, clock=self.clock
        )
        self.hooks = HookFanout()
        self.ctx = ExecutionContext(
            SingleVMRuntime(self.vm), self.registry, hooks=self.hooks, flags=flags
        )
        self.vm.collector.subscribe(
            lambda report: self.hooks.on_gc_report(report, CLIENT_SITE)
        )
        self.vm.collector.subscribe_free(self.hooks.on_free)

    def add_listener(self, listener: ExecutionListener) -> None:
        self.hooks.add(listener)

    @property
    def elapsed(self) -> float:
        return self.clock.now
