"""AIDE: an adaptive distributed platform for resource-constrained devices.

A full reproduction of "Towards a Distributed Platform for
Resource-Constrained Devices" (Messer et al., ICDCS 2002).  The library
provides:

* a guest virtual machine (:mod:`repro.vm`) standing in for the paper's
  modified Chai JVM — class/object model, byte-accounted heap, mark-and
  -sweep collector, native/static placement rules, interception hooks;
* the AIDE modules (:mod:`repro.core`) — execution-graph monitoring,
  the modified MINCUT partitioning heuristic with pluggable policies,
  and the offloading engine;
* remote invocation support (:mod:`repro.rpc`) with per-VM reference
  namespaces and distributed GC;
* an analytic network substrate (:mod:`repro.net`; the paper's 11 Mbps
  WaveLAN is the default);
* the ad-hoc two-VM platform prototype (:mod:`repro.platform`);
* a trace-driven emulator (:mod:`repro.emulator`) for repeatable
  experimentation;
* the five evaluation workloads (:mod:`repro.apps`) and one experiment
  harness per table/figure (:mod:`repro.experiments`).

Quickstart::

    from repro import DistributedPlatform, JavaNote, OffloadPolicy

    platform = DistributedPlatform(offload_policy=OffloadPolicy.initial())
    report = platform.run(JavaNote())
    print(report.offload_count, report.elapsed)
"""

from .apps import Biomer, Dia, GuestApplication, JavaNote, Tracer, Voxel
from .config import (
    DeviceProfile,
    EnhancementFlags,
    GCConfig,
    JORNADA,
    PC_SURROGATE,
    VMConfig,
)
from .core import (
    BestEffortCpuPolicy,
    CombinedPartitionPolicy,
    CpuPartitionPolicy,
    EnergyPartitionPolicy,
    PowerProfile,
    EvaluationContext,
    ExecutionGraph,
    ExecutionMonitor,
    MemoryPartitionPolicy,
    MemoryTrigger,
    OffloadPolicy,
    PartitionDecision,
    Partitioner,
    TriggerConfig,
    policy_sweep,
)
from .emulator import (
    EmulationResult,
    Emulator,
    EmulatorConfig,
    Trace,
    record_application,
)
from .errors import (
    AideError,
    ConfigurationError,
    GuestError,
    MigrationError,
    NoBeneficialPartitionError,
    OutOfMemoryError,
    PlatformError,
    SurrogateUnavailableError,
    TraceError,
)
from .net import LinkModel, WAVELAN_11MBPS
from .platform import (
    DistributedPlatform,
    PlatformReport,
    SurrogateDirectory,
    SurrogateOffer,
)
from .vm import ClassRegistry, LocalSession, VirtualMachine

__version__ = "1.0.0"

__all__ = [
    "AideError",
    "BestEffortCpuPolicy",
    "Biomer",
    "ClassRegistry",
    "CombinedPartitionPolicy",
    "ConfigurationError",
    "CpuPartitionPolicy",
    "DeviceProfile",
    "Dia",
    "DistributedPlatform",
    "EmulationResult",
    "Emulator",
    "EmulatorConfig",
    "EnergyPartitionPolicy",
    "EnhancementFlags",
    "EvaluationContext",
    "ExecutionGraph",
    "ExecutionMonitor",
    "GCConfig",
    "GuestApplication",
    "GuestError",
    "JORNADA",
    "JavaNote",
    "LinkModel",
    "LocalSession",
    "MemoryPartitionPolicy",
    "MemoryTrigger",
    "MigrationError",
    "NoBeneficialPartitionError",
    "OffloadPolicy",
    "OutOfMemoryError",
    "PC_SURROGATE",
    "PartitionDecision",
    "Partitioner",
    "PlatformError",
    "PlatformReport",
    "PowerProfile",
    "SurrogateDirectory",
    "SurrogateOffer",
    "SurrogateUnavailableError",
    "Trace",
    "TraceError",
    "Tracer",
    "TriggerConfig",
    "VMConfig",
    "VirtualMachine",
    "Voxel",
    "WAVELAN_11MBPS",
    "policy_sweep",
    "record_application",
]
