"""Marshalling: byte-size measurement and wire encoding of guest values.

Two jobs live here:

* :func:`deep_size` — the byte accounting used for *every* interaction,
  local or remote.  The paper's execution graph annotates each edge with
  "the total amount of information transferred between objects of the
  classes as represented by the parameters and return values", so sizes
  are measured uniformly whether or not a call actually crosses the
  network.
* :func:`encode_value` / :func:`decode_value` — the wire format used by
  the RPC channel between two VMs.  Guest objects travel *by reference*
  (an 8-byte handle resolved through the reference-mapping tables);
  primitives travel by value.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple, Union

from ..errors import RemoteInvocationError
from ..vm.objectmodel import JObject

#: Wire overhead charged per RPC message (headers, opcode, request id).
MESSAGE_HEADER_BYTES = 32

#: Size of one object reference handle on the wire.
REFERENCE_BYTES = 8

#: Fixed overhead of an encoded string (length + tag) before its chars.
STRING_HEADER_BYTES = 24

#: Per-character size (UTF-16, as in Java).
CHAR_BYTES = 2

_SCALAR_SIZES = {
    bool: 1,
    int: 8,
    float: 8,
    type(None): 8,
}

#: Memoised sizes for short strings (method names, field names, class
#: names recur on every interaction); bounded so a pathological guest
#: cannot grow it without limit.
_SMALL_STRING_MAX_LEN = 64
_SMALL_STRING_CACHE_CAP = 4096
_small_string_sizes: Dict[str, int] = {}


def reset_size_cache() -> None:
    """Clear the small-string size memo.

    The memo is module-global so the hot path stays a single dict
    lookup, which means it leaks state across tests and benchmark
    rounds; fixtures call this between runs so no run observes another
    run's cache occupancy (sizes themselves are pure, but eviction
    order and capacity behaviour are not).
    """
    _small_string_sizes.clear()


def deep_size(value: Any) -> int:
    """Measure the marshalled size of one guest value in bytes.

    Scalars and strings — the overwhelming majority of marshalled
    values — resolve through an exact-type fast path before any
    ``isinstance`` dispatch; short strings are memoised.

    >>> deep_size(42)
    8
    >>> deep_size("ab")
    28
    >>> deep_size((1, 2.0, None))
    40
    """
    value_type = type(value)
    size = _SCALAR_SIZES.get(value_type)
    if size is not None:
        return size
    if value_type is str:
        size = _small_string_sizes.get(value)
        if size is not None:
            return size
        size = STRING_HEADER_BYTES + CHAR_BYTES * len(value)
        if len(value) <= _SMALL_STRING_MAX_LEN:
            if len(_small_string_sizes) >= _SMALL_STRING_CACHE_CAP:
                # Evict the oldest entry (insertion order) so hot names
                # seen after the cap still get memoised, instead of the
                # cache freezing at whatever filled it first.
                _small_string_sizes.pop(next(iter(_small_string_sizes)))
            _small_string_sizes[value] = size
        return size
    if isinstance(value, JObject):
        return REFERENCE_BYTES
    if isinstance(value, str):
        return STRING_HEADER_BYTES + CHAR_BYTES * len(value)
    if isinstance(value, (tuple, list)):
        return 16 + sum(deep_size(item) for item in value)
    if isinstance(value, dict):
        return 16 + sum(
            deep_size(k) + deep_size(v) for k, v in value.items()
        )
    raise RemoteInvocationError(
        f"value of type {value_type.__name__} cannot be marshalled"
    )


def args_size(args: Tuple[Any, ...]) -> int:
    """Total marshalled size of a parameter tuple (without the header)."""
    return sum(deep_size(arg) for arg in args)


# -- wire encoding ----------------------------------------------------------
#
# The encoded form is a small JSON-able structure.  Object references are
# encoded as ``{"$ref": <token>}`` where the token names the owning VM's
# namespace and the handle within it — the two VMs deliberately do not
# share an object-reference namespace (paper section 3.2), so a bare
# handle would be ambiguous the moment a call carries references in both
# directions.

Encoded = Union[None, bool, int, float, str, List, Dict]


def encode_value(value: Any, export_ref) -> Encoded:
    """Encode one value for the wire.

    ``export_ref(obj)`` is called for each :class:`JObject` and must
    return a JSON-able token (typically ``{"owner": site, "handle": n}``)
    that the receiving side's ``resolve_ref`` understands.
    """
    if isinstance(value, JObject):
        return {"$ref": export_ref(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [encode_value(item, export_ref) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise RemoteInvocationError("dict keys on the wire must be str")
            if key.startswith("$"):
                raise RemoteInvocationError(
                    f"dict key {key!r} collides with wire tags"
                )
            encoded[key] = encode_value(item, export_ref)
        return encoded
    raise RemoteInvocationError(
        f"value of type {type(value).__name__} cannot be encoded"
    )


def decode_value(encoded: Encoded, resolve_ref) -> Any:
    """Decode one wire value.

    ``resolve_ref(token)`` must translate a reference token produced by
    the sender's ``export_ref`` into a live object (possibly a stub for
    a still-remote object).
    """
    if isinstance(encoded, dict):
        if "$ref" in encoded:
            return resolve_ref(encoded["$ref"])
        return {k: decode_value(v, resolve_ref) for k, v in encoded.items()}
    if isinstance(encoded, list):
        return [decode_value(item, resolve_ref) for item in encoded]
    return encoded


def message_size(payload_bytes: int) -> int:
    """Total on-wire size of a message with the given payload."""
    if payload_bytes < 0:
        raise RemoteInvocationError("payload size cannot be negative")
    return MESSAGE_HEADER_BYTES + payload_bytes


# -- compact binary wire format ---------------------------------------------
#
# The RPC channel's original encoding was a JSON-shaped dict tree: every
# method name, field name, and class name travelled as a full string on
# every message.  The binary format below replaces it.  Values are
# tag-prefixed; class/method/field names (and any other short string)
# are *interned* per channel direction — the first use ships the string
# once with a 2-byte id, every later use ships only the id.  Recurring
# names are the bulk of RPC metadata, so steady-state messages shrink to
# a few bytes of framing plus the actual argument payload.

#: Format version, first byte of every encoded message.
WIRE_FORMAT_VERSION = 1

#: On-wire cost of an interned-name reference (tag + 2-byte id).
INTERNED_NAME_BYTES = 3

_TAG_NULL = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR_DEF = 0x05
_TAG_STR_REF = 0x06
_TAG_STR_RAW = 0x07
_TAG_REF = 0x08
_TAG_LIST = 0x09
_TAG_DICT = 0x0A

#: Strings longer than this are never interned (one-off payload text).
INTERN_MAX_LEN = _SMALL_STRING_MAX_LEN

#: A 2-byte id space per direction; beyond it, strings ship raw.
INTERN_TABLE_CAP = 0xFFFF

_pack_f64 = struct.Struct(">d").pack
_unpack_f64 = struct.Struct(">d").unpack_from
_pack_u16 = struct.Struct(">H").pack
_unpack_u16 = struct.Struct(">H").unpack_from


def _write_varint(out: bytearray, value: int) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise RemoteInvocationError("truncated varint on the wire")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    """Map signed to unsigned so small magnitudes stay small (any width)."""
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


class InternTable:
    """Per-direction string table: first use ships the string, later
    uses ship a 2-byte id.

    Sender and receiver state live in one object because the modelled
    channel's two endpoints share the process; the encoder assigns ids
    in first-use order and the decoder learns them from ``STR_DEF``
    entries in the same stream, so the table can never desynchronise.
    """

    def __init__(self, capacity: int = INTERN_TABLE_CAP) -> None:
        if capacity < 1:
            raise RemoteInvocationError("intern table needs capacity >= 1")
        self.capacity = capacity
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []

    def __len__(self) -> int:
        return len(self._names)

    def intern(self, name: str) -> Tuple[int, bool]:
        """Return ``(id, is_new)``; raises when the table is full."""
        ident = self._ids.get(name)
        if ident is not None:
            return ident, False
        if len(self._names) >= self.capacity:
            raise RemoteInvocationError("intern table full")
        ident = len(self._names)
        self._ids[name] = ident
        self._names.append(name)
        return ident, True

    def can_intern(self, name: str) -> bool:
        return name in self._ids or len(self._names) < self.capacity

    def lookup(self, ident: int) -> str:
        if 0 <= ident < len(self._names):
            return self._names[ident]
        raise RemoteInvocationError(f"unknown interned-string id {ident}")

    def learn(self, ident: int, name: str) -> None:
        """Decoder side of a ``STR_DEF``: register an id seen on the wire."""
        if ident != len(self._names):
            raise RemoteInvocationError(
                f"out-of-order intern definition {ident} "
                f"(expected {len(self._names)})"
            )
        self._ids[name] = ident
        self._names.append(name)


class WireCodec:
    """Binary encoder/decoder for one direction of one channel.

    Encoding and decoding share the codec's intern table; a value
    encoded by this codec must be decoded by the same codec (or its
    mirrored peer) so interned ids resolve.  ``export_ref(obj)`` must
    return ``(owner_site, handle)``; ``resolve_ref(owner_site, handle)``
    is its inverse on the receiving side.
    """

    def __init__(self) -> None:
        self.names = InternTable()
        self.messages_encoded = 0
        self.bytes_encoded = 0

    # -- encoding ----------------------------------------------------------

    def encode(self, value: Any, export_ref) -> bytes:
        out = bytearray([WIRE_FORMAT_VERSION])
        self._encode_value(out, value, export_ref)
        self.messages_encoded += 1
        self.bytes_encoded += len(out)
        return bytes(out)

    def _encode_str(self, out: bytearray, value: str) -> None:
        if len(value) <= INTERN_MAX_LEN and self.names.can_intern(value):
            ident, is_new = self.names.intern(value)
            if is_new:
                raw = value.encode("utf-8")
                out.append(_TAG_STR_DEF)
                out += _pack_u16(ident)
                _write_varint(out, len(raw))
                out += raw
            else:
                out.append(_TAG_STR_REF)
                out += _pack_u16(ident)
            return
        raw = value.encode("utf-8")
        out.append(_TAG_STR_RAW)
        _write_varint(out, len(raw))
        out += raw

    def _encode_value(self, out: bytearray, value: Any, export_ref) -> None:
        if isinstance(value, JObject):
            owner, handle = export_ref(value)
            out.append(_TAG_REF)
            self._encode_str(out, owner)
            _write_varint(out, handle)
            return
        if value is None:
            out.append(_TAG_NULL)
            return
        if isinstance(value, bool):
            out.append(_TAG_TRUE if value else _TAG_FALSE)
            return
        if isinstance(value, int):
            out.append(_TAG_INT)
            _write_varint(out, _zigzag(value))
            return
        if isinstance(value, float):
            out.append(_TAG_FLOAT)
            out += _pack_f64(value)
            return
        if isinstance(value, str):
            self._encode_str(out, value)
            return
        if isinstance(value, (tuple, list)):
            out.append(_TAG_LIST)
            _write_varint(out, len(value))
            for item in value:
                self._encode_value(out, item, export_ref)
            return
        if isinstance(value, dict):
            out.append(_TAG_DICT)
            _write_varint(out, len(value))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise RemoteInvocationError(
                        "dict keys on the wire must be str"
                    )
                self._encode_str(out, key)
                self._encode_value(out, item, export_ref)
            return
        raise RemoteInvocationError(
            f"value of type {type(value).__name__} cannot be encoded"
        )

    # -- decoding ----------------------------------------------------------

    def decode(self, data: bytes, resolve_ref) -> Any:
        if not data or data[0] != WIRE_FORMAT_VERSION:
            raise RemoteInvocationError(
                f"unsupported wire format {data[:1]!r}"
            )
        value, pos = self._decode_value(data, 1, resolve_ref)
        if pos != len(data):
            raise RemoteInvocationError(
                f"{len(data) - pos} trailing bytes after wire value"
            )
        return value

    def _decode_str(self, data: bytes, pos: int) -> Tuple[str, int]:
        tag = data[pos]
        pos += 1
        if tag == _TAG_STR_REF:
            (ident,) = _unpack_u16(data, pos)
            return self.names.lookup(ident), pos + 2
        if tag == _TAG_STR_DEF:
            (ident,) = _unpack_u16(data, pos)
            length, pos = _read_varint(data, pos + 2)
            name = data[pos:pos + length].decode("utf-8")
            if ident >= len(self.names):
                # Fresh definition (decode of a peer-encoded message);
                # re-decoding our own encoder output finds it present.
                self.names.learn(ident, name)
            return name, pos + length
        if tag == _TAG_STR_RAW:
            length, pos = _read_varint(data, pos)
            return data[pos:pos + length].decode("utf-8"), pos + length
        raise RemoteInvocationError(f"expected a string tag, got {tag:#x}")

    def _decode_value(self, data: bytes, pos: int,
                      resolve_ref) -> Tuple[Any, int]:
        if pos >= len(data):
            raise RemoteInvocationError("truncated wire value")
        tag = data[pos]
        if tag == _TAG_NULL:
            return None, pos + 1
        if tag == _TAG_TRUE:
            return True, pos + 1
        if tag == _TAG_FALSE:
            return False, pos + 1
        if tag == _TAG_INT:
            raw, pos = _read_varint(data, pos + 1)
            return _unzigzag(raw), pos
        if tag == _TAG_FLOAT:
            return _unpack_f64(data, pos + 1)[0], pos + 9
        if tag in (_TAG_STR_DEF, _TAG_STR_REF, _TAG_STR_RAW):
            return self._decode_str(data, pos)
        if tag == _TAG_REF:
            owner, pos = self._decode_str(data, pos + 1)
            handle, pos = _read_varint(data, pos)
            return resolve_ref(owner, handle), pos
        if tag == _TAG_LIST:
            count, pos = _read_varint(data, pos + 1)
            items = []
            for _ in range(count):
                item, pos = self._decode_value(data, pos, resolve_ref)
                items.append(item)
            return items, pos
        if tag == _TAG_DICT:
            count, pos = _read_varint(data, pos + 1)
            decoded = {}
            for _ in range(count):
                key, pos = self._decode_str(data, pos)
                decoded[key], pos = self._decode_value(data, pos,
                                                       resolve_ref)
            return decoded, pos
        raise RemoteInvocationError(f"unknown wire tag {tag:#x}")

