"""Marshalling: byte-size measurement and wire encoding of guest values.

Two jobs live here:

* :func:`deep_size` — the byte accounting used for *every* interaction,
  local or remote.  The paper's execution graph annotates each edge with
  "the total amount of information transferred between objects of the
  classes as represented by the parameters and return values", so sizes
  are measured uniformly whether or not a call actually crosses the
  network.
* :func:`encode_value` / :func:`decode_value` — the wire format used by
  the RPC channel between two VMs.  Guest objects travel *by reference*
  (an 8-byte handle resolved through the reference-mapping tables);
  primitives travel by value.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Union

from ..errors import RemoteInvocationError
from ..vm.objectmodel import JObject

#: Wire overhead charged per RPC message (headers, opcode, request id).
MESSAGE_HEADER_BYTES = 32

#: Size of one object reference handle on the wire.
REFERENCE_BYTES = 8

#: Fixed overhead of an encoded string (length + tag) before its chars.
STRING_HEADER_BYTES = 24

#: Per-character size (UTF-16, as in Java).
CHAR_BYTES = 2

_SCALAR_SIZES = {
    bool: 1,
    int: 8,
    float: 8,
    type(None): 8,
}

#: Memoised sizes for short strings (method names, field names, class
#: names recur on every interaction); bounded so a pathological guest
#: cannot grow it without limit.
_SMALL_STRING_MAX_LEN = 64
_SMALL_STRING_CACHE_CAP = 4096
_small_string_sizes: Dict[str, int] = {}


def deep_size(value: Any) -> int:
    """Measure the marshalled size of one guest value in bytes.

    Scalars and strings — the overwhelming majority of marshalled
    values — resolve through an exact-type fast path before any
    ``isinstance`` dispatch; short strings are memoised.

    >>> deep_size(42)
    8
    >>> deep_size("ab")
    28
    >>> deep_size((1, 2.0, None))
    40
    """
    value_type = type(value)
    size = _SCALAR_SIZES.get(value_type)
    if size is not None:
        return size
    if value_type is str:
        size = _small_string_sizes.get(value)
        if size is not None:
            return size
        size = STRING_HEADER_BYTES + CHAR_BYTES * len(value)
        if len(value) <= _SMALL_STRING_MAX_LEN:
            if len(_small_string_sizes) >= _SMALL_STRING_CACHE_CAP:
                # Evict the oldest entry (insertion order) so hot names
                # seen after the cap still get memoised, instead of the
                # cache freezing at whatever filled it first.
                _small_string_sizes.pop(next(iter(_small_string_sizes)))
            _small_string_sizes[value] = size
        return size
    if isinstance(value, JObject):
        return REFERENCE_BYTES
    if isinstance(value, str):
        return STRING_HEADER_BYTES + CHAR_BYTES * len(value)
    if isinstance(value, (tuple, list)):
        return 16 + sum(deep_size(item) for item in value)
    if isinstance(value, dict):
        return 16 + sum(
            deep_size(k) + deep_size(v) for k, v in value.items()
        )
    raise RemoteInvocationError(
        f"value of type {value_type.__name__} cannot be marshalled"
    )


def args_size(args: Tuple[Any, ...]) -> int:
    """Total marshalled size of a parameter tuple (without the header)."""
    return sum(deep_size(arg) for arg in args)


# -- wire encoding ----------------------------------------------------------
#
# The encoded form is a small JSON-able structure.  Object references are
# encoded as ``{"$ref": <token>}`` where the token names the owning VM's
# namespace and the handle within it — the two VMs deliberately do not
# share an object-reference namespace (paper section 3.2), so a bare
# handle would be ambiguous the moment a call carries references in both
# directions.

Encoded = Union[None, bool, int, float, str, List, Dict]


def encode_value(value: Any, export_ref) -> Encoded:
    """Encode one value for the wire.

    ``export_ref(obj)`` is called for each :class:`JObject` and must
    return a JSON-able token (typically ``{"owner": site, "handle": n}``)
    that the receiving side's ``resolve_ref`` understands.
    """
    if isinstance(value, JObject):
        return {"$ref": export_ref(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [encode_value(item, export_ref) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise RemoteInvocationError("dict keys on the wire must be str")
            if key.startswith("$"):
                raise RemoteInvocationError(
                    f"dict key {key!r} collides with wire tags"
                )
            encoded[key] = encode_value(item, export_ref)
        return encoded
    raise RemoteInvocationError(
        f"value of type {type(value).__name__} cannot be encoded"
    )


def decode_value(encoded: Encoded, resolve_ref) -> Any:
    """Decode one wire value.

    ``resolve_ref(token)`` must translate a reference token produced by
    the sender's ``export_ref`` into a live object (possibly a stub for
    a still-remote object).
    """
    if isinstance(encoded, dict):
        if "$ref" in encoded:
            return resolve_ref(encoded["$ref"])
        return {k: decode_value(v, resolve_ref) for k, v in encoded.items()}
    if isinstance(encoded, list):
        return [decode_value(item, resolve_ref) for item in encoded]
    return encoded


def message_size(payload_bytes: int) -> int:
    """Total on-wire size of a message with the given payload."""
    if payload_bytes < 0:
        raise RemoteInvocationError("payload size cannot be negative")
    return MESSAGE_HEADER_BYTES + payload_bytes
