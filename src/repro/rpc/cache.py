"""Remote-read caching (COARA-style state caching).

Once a partition is chosen, completion time is dominated by cross-site
interaction cost: every remote field read pays a WaveLAN round trip for
a handful of bytes.  Friedman & Hauser's COARA shows that caching
transferred state is the single biggest lever in offloading systems —
most remotely-read fields are read-mostly (widget geometry, document
metadata, immutable strings), so the first read can fault a copy to the
reading site and later reads can be served locally.

:class:`RemoteReadCache` is that lever for the two-site platform.  It
tracks which *objects* the reading site holds a fresh copy of (object
granularity: the trace format does not name fields, and COARA likewise
caches whole-object state).  A cache hit skips the round trip entirely
and is charged like a local read — zero bytes on the wire.  The
*logical* interaction is still recorded in the execution graph, so
partitioning decisions are oblivious to the transport optimisation.

Coherence is write-invalidate, with three invalidation sources:

* **writes** — any write to a cached object (from either site; a local
  write by the owner makes the remote copy stale) drops the entry;
* **migration** — applying a placement changes residency, so the whole
  cache is dropped (entries are cheap to refill, wrong entries are not);
* **GC** — when the owner object is collected its entry is dropped.

Arrays are deliberately *not* cached: bulk element traffic is the data
the partitioner already places via migration, and caching it would
double-count that state.  Static fields cache at class granularity
(their owner is the class, pinned on the client).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

from ..errors import ConfigurationError

#: Default bound on cached entries; FIFO eviction beyond it.  The cache
#: maps oids to a validity bit, so even the bound is generous.
DEFAULT_CACHE_CAPACITY = 4096

#: Key prefix for static (class-granularity) entries, so an oid and a
#: class name can never collide.
_STATIC = "static"


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for one run."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class RemoteReadCache:
    """Validity tracking for remotely-read object state.

    The cache never stores guest values — execution in this platform is
    serial and values are always read from the live object.  What it
    stores is the *coherence fact* that the reading site already holds a
    fresh copy, which is all the time/traffic model needs.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError("cache capacity must be at least 1")
        self.capacity = capacity
        self.stats = CacheStats()
        # Insertion-ordered dict used as a FIFO set: key -> True.
        self._valid: Dict[Hashable, bool] = {}

    # -- keys -------------------------------------------------------------

    @staticmethod
    def object_key(oid: int) -> Hashable:
        return oid

    @staticmethod
    def static_key(class_name: str) -> Hashable:
        return (_STATIC, class_name)

    # -- the read path ----------------------------------------------------

    def note_read(self, key: Hashable) -> bool:
        """Record a remote read of ``key``; True when it was a hit.

        A miss installs the entry (the read that is about to be charged
        faults the state across), evicting the oldest entry at capacity.
        """
        if key in self._valid:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._valid) >= self.capacity:
            self._valid.pop(next(iter(self._valid)))
            self.stats.evictions += 1
        self._valid[key] = True
        return False

    def holds(self, key: Hashable) -> bool:
        """Whether a fresh copy of ``key`` is cached (no counters)."""
        return key in self._valid

    # -- invalidation -----------------------------------------------------

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry (a write or GC of the owner); True if present."""
        if self._valid.pop(key, None) is not None:
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_all(self) -> int:
        """Drop everything (migration barrier); returns entries dropped."""
        dropped = len(self._valid)
        self._valid.clear()
        self.stats.invalidations += dropped
        return dropped

    def __len__(self) -> int:
        return len(self._valid)
