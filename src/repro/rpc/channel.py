"""The RPC channel between two VMs.

The transparent offloading path in :mod:`repro.vm.context` routes and
times remote operations itself (the emulator's serial-execution model).
The channel adds the *mechanism* the paper's remote invocation module
provides around that path:

* per-VM export tables (:class:`~repro.rpc.refmap.ReferenceMap`) so each
  VM only ever sees its own handles for the peer's objects;
* a compact binary wire format (:class:`~repro.rpc.marshal.WireCodec`)
  with per-direction interned name tables — requests and responses make
  a genuine encode/decode round trip through real bytes;
* a pool of worker threads on each VM that performs RPCs on behalf of
  the other VM (modelled, with occupancy statistics and queueing delay —
  execution itself is serial, as the paper's emulator assumes);
* an explicit RMI-style call API (used with :class:`~repro.rpc.proxy.RemoteProxy`);
* a GC barrier that prunes export-table entries whose objects the
  collector reclaimed, so dead handles cannot pin table growth.

Timing and traffic are charged exactly once, by the execution context's
runtime, when the underlying invocation crosses sites.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, Optional, Tuple

from ..errors import RemoteInvocationError
from ..vm.objectmodel import JObject

if TYPE_CHECKING:  # avoid a circular import with repro.vm.context
    from ..vm.context import ExecutionContext
from .marshal import WireCodec
from .proxy import RemoteStub
from .refmap import ReferenceMap
from .retry import ReliableDelivery

#: Modelled service time of one backlogged RPC while every worker is
#: busy: roughly a null WaveLAN one-way (protocol work plus dispatch).
#: A request that arrives with all workers occupied waits for the
#: backlog ahead of it to drain at this rate.
QUEUE_SERVICE_SECONDS = 1.2e-3

#: Requests served without a client id all account to one shared
#: round-robin flow (the historical single-tenant behaviour).
ANONYMOUS_CLIENT = "<anon>"


class WorkerPool:
    """Occupancy model of one VM's RPC service threads.

    A request that finds all ``size`` workers busy is *queued*, not
    refused: real RPC runtimes park the request until a worker frees
    up.  The modelled wait is charged to the caller through
    ``charge_wait`` (the channel wires this to the shared virtual
    clock), in units of one ``service_estimate_s`` quantum.

    Backlog is drained **deficit-round-robin across client ids**, not
    FIFO: a newly queued request from client *c* that already has
    ``own`` requests outstanding enters service round ``own + 1``, so
    every *other* client contributes at most ``own + 1`` requests ahead
    of it (one per round) while ``c``'s own outstanding requests are
    fully serial.  A chatty client therefore only delays itself — a
    single-request client entering a pool saturated by one bulk caller
    waits one quantum, not the whole backlog.  With a single flow (all
    requests anonymous or one client id) the DRR wait degenerates to
    the classic FIFO ``backlog x quantum``, so single-tenant accounting
    is bit-identical to the historical model.
    """

    def __init__(
        self,
        size: int = 4,
        charge_wait: Optional[Callable[[float], None]] = None,
        service_estimate_s: float = QUEUE_SERVICE_SECONDS,
    ) -> None:
        if size < 1:
            raise RemoteInvocationError("worker pool needs at least one thread")
        self.size = size
        self.in_flight = 0
        self.served = 0
        self.peak_in_flight = 0
        self.queued = 0
        self.queue_wait_s = 0.0
        self.service_estimate_s = service_estimate_s
        self._charge_wait = charge_wait
        #: Per-client requests currently inside :meth:`serve`.
        self._outstanding: Dict[str, int] = {}
        #: Fairness counters, surfaced through :meth:`client_stats`.
        self._client_served: Dict[str, int] = {}
        self._client_queued: Dict[str, int] = {}
        self._client_wait_s: Dict[str, float] = {}

    def drr_wait(self, client_id: str) -> float:
        """Modelled DRR admission wait for one more request of ``client_id``.

        ``own + sum(min(other, own + 1))`` requests run ahead of the
        new arrival; ``size - 1`` of those drain on the other workers
        in parallel.  At least one quantum is charged — the pool *was*
        full when the request arrived.
        """
        own = self._outstanding.get(client_id, 0)
        ahead = own + sum(
            min(count, own + 1)
            for other, count in self._outstanding.items()
            if other != client_id and count > 0
        )
        backlog = max(1, ahead - (self.size - 1))
        return backlog * self.service_estimate_s

    @contextmanager
    def serve(self, client_id: Optional[str] = None) -> Iterator[None]:
        cid = client_id if client_id is not None else ANONYMOUS_CLIENT
        if self.in_flight >= self.size:
            wait = self.drr_wait(cid)
            self.queued += 1
            self.queue_wait_s += wait
            self._client_queued[cid] = self._client_queued.get(cid, 0) + 1
            self._client_wait_s[cid] = (
                self._client_wait_s.get(cid, 0.0) + wait
            )
            if self._charge_wait is not None:
                self._charge_wait(wait)
        self.in_flight += 1
        self.served += 1
        self._outstanding[cid] = self._outstanding.get(cid, 0) + 1
        self._client_served[cid] = self._client_served.get(cid, 0) + 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        try:
            yield
        finally:
            self.in_flight -= 1
            remaining = self._outstanding.get(cid, 0) - 1
            if remaining > 0:
                self._outstanding[cid] = remaining
            else:
                self._outstanding.pop(cid, None)

    def client_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-client fairness counters (served/queued/queue wait)."""
        return {
            cid: {
                "served": self._client_served.get(cid, 0),
                "queued": self._client_queued.get(cid, 0),
                "queue_wait_s": self._client_wait_s.get(cid, 0.0),
            }
            for cid in sorted(self._client_served)
        }


class RpcChannel:
    """Bidirectional RPC between the two sites of one execution context."""

    def __init__(
        self, ctx: "ExecutionContext", site_a: str, site_b: str,
        pool_size: int = 4,
        delivery: Optional[ReliableDelivery] = None,
        service_quantum_s: float = QUEUE_SERVICE_SECONDS,
    ) -> None:
        if site_a == site_b:
            raise RemoteInvocationError("a channel joins two distinct sites")
        self.ctx = ctx
        self.sites = (site_a, site_b)
        #: Optional reliability layer: when present, every explicit RPC
        #: is a sequence-numbered exchange — retransmitted requests are
        #: applied exactly once, and a dead peer degrades the call into
        #: local execution against the repatriated object.
        self.delivery = delivery
        self.exports: Dict[str, ReferenceMap] = {
            site_a: ReferenceMap(site_a),
            site_b: ReferenceMap(site_b),
        }
        self.pools: Dict[str, WorkerPool] = {
            site_a: WorkerPool(pool_size, charge_wait=self._charge_wait,
                               service_estimate_s=service_quantum_s),
            site_b: WorkerPool(pool_size, charge_wait=self._charge_wait,
                               service_estimate_s=service_quantum_s),
        }
        #: One codec per direction of travel, keyed by the sending site:
        #: each direction's interned-name table grows independently,
        #: exactly as two decoupled streams would on a real link.
        self.codecs: Dict[str, WireCodec] = {
            site_a: WireCodec(),
            site_b: WireCodec(),
        }
        self.pruned_handles = 0

    def _charge_wait(self, seconds: float) -> None:
        self.ctx.clock.advance(seconds)

    # -- stubs ------------------------------------------------------------

    def _map_for(self, site: str) -> ReferenceMap:
        try:
            return self.exports[site]
        except KeyError:
            raise RemoteInvocationError(
                f"site {site!r} is not an endpoint of this channel"
            ) from None

    def _peer_of(self, site: str) -> str:
        site_a, site_b = self.sites
        return site_b if site == site_a else site_a

    def stub_for(self, obj: JObject) -> RemoteStub:
        """Export ``obj`` from its home VM and return a peer-side stub."""
        handle = self._map_for(obj.home).export(obj)
        return RemoteStub(peer=obj.home, handle=handle, class_name=obj.class_name)

    def resolve(self, stub: RemoteStub) -> JObject:
        """Translate a stub back into the live exported object."""
        return self._map_for(stub.peer).resolve(stub.handle)

    # -- wire helpers -----------------------------------------------------------

    def _export_ref(self, obj: JObject) -> Tuple[str, int]:
        return obj.home, self._map_for(obj.home).export(obj)

    def _resolve_ref(self, owner: str, handle: int) -> JObject:
        return self._map_for(owner).resolve(handle)

    def _send(self, sender: str, payload: Any) -> bytes:
        """Encode one message travelling out of ``sender``."""
        return self.codecs[sender].encode(payload, self._export_ref)

    def _receive(self, sender: str, data: bytes) -> Any:
        """Decode one message that travelled out of ``sender``."""
        return self.codecs[sender].decode(data, self._resolve_ref)

    # -- explicit RPC API ---------------------------------------------------------

    def call(self, stub: RemoteStub, method: str, *args: Any) -> Any:
        """Invoke a method on the remote object named by ``stub``.

        The request makes a genuine wire round trip: it is encoded to
        bytes (references become handles in their owner's namespace,
        names intern into the direction's string table), decoded on the
        serving side, and the result travels back the same way.
        """
        target = self.resolve(stub)
        caller = self._peer_of(target.home)

        def serve():
            wire_request = self._send(caller, {
                "op": "invoke",
                "handle": stub.handle,
                "method": method,
                "args": list(args),
            })
            request = self._receive(caller, wire_request)
            serving = self._map_for(target.home).resolve(request["handle"])
            with self.pools[target.home].serve():
                return self.ctx.invoke(serving, request["method"],
                                       *request["args"])

        if self.delivery is None:
            result = serve()
        else:
            delivered, result = self.delivery.exchange(serve)
            if not delivered:
                # The peer died under this call.  Recovery has already
                # repatriated its state, so the invocation completes
                # client-side against the (now local) object.
                return self.ctx.invoke(target, method, *args)
        wire_response = self._send(target.home,
                                   {"op": "result", "value": result})
        return self._receive(target.home, wire_response)["value"]

    def get_field(self, stub: RemoteStub, field_name: str) -> Any:
        target = self.resolve(stub)

        def serve():
            with self.pools[target.home].serve():
                return self.ctx.get_field(target, field_name)

        if self.delivery is None:
            value = serve()
        else:
            delivered, value = self.delivery.exchange(serve)
            if not delivered:
                return self.ctx.get_field(target, field_name)
        wire = self._send(target.home, {"op": "result", "value": value})
        return self._receive(target.home, wire)["value"]

    def set_field(self, stub: RemoteStub, field_name: str, value: Any) -> None:
        target = self.resolve(stub)
        caller = self._peer_of(target.home)

        def serve():
            wire = self._send(caller, {
                "op": "set", "handle": stub.handle,
                "field": field_name, "value": value,
            })
            request = self._receive(caller, wire)
            serving = self._map_for(target.home).resolve(request["handle"])
            with self.pools[target.home].serve():
                self.ctx.set_field(serving, request["field"], request["value"])

        if self.delivery is None:
            serve()
            return
        delivered, _ = self.delivery.exchange(serve)
        if not delivered:
            self.ctx.set_field(target, field_name, value)

    # -- GC barrier and statistics -------------------------------------------------

    def gc_barrier(self, site: str) -> int:
        """A collection finished on ``site``: prune its dead exports.

        Exported-but-collected objects would otherwise leave dangling
        handles in the site's reference map forever (the map holds the
        only cross-site name for an object, not a liveness root).
        Returns the number of handles pruned.
        """
        pruned = self._map_for(site).prune_dead()
        self.pruned_handles += pruned
        return pruned

    def stats(self) -> dict:
        """Channel-level counters (exports, pools, wire, pruning)."""
        return {
            "exports": {site: len(m) for site, m in self.exports.items()},
            "pruned_handles": self.pruned_handles,
            "wire_messages": sum(
                c.messages_encoded for c in self.codecs.values()
            ),
            "wire_bytes": sum(c.bytes_encoded for c in self.codecs.values()),
            "interned_names": sum(len(c.names) for c in self.codecs.values()),
            "pools": {
                site: {
                    "served": pool.served,
                    "queued": pool.queued,
                    "queue_wait_s": pool.queue_wait_s,
                    "peak_in_flight": pool.peak_in_flight,
                    "service_quantum_s": pool.service_estimate_s,
                    "clients": pool.client_stats(),
                }
                for site, pool in self.pools.items()
            },
        }
