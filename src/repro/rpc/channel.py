"""The RPC channel between two VMs.

The transparent offloading path in :mod:`repro.vm.context` routes and
times remote operations itself (the emulator's serial-execution model).
The channel adds the *mechanism* the paper's remote invocation module
provides around that path:

* per-VM export tables (:class:`~repro.rpc.refmap.ReferenceMap`) so each
  VM only ever sees its own handles for the peer's objects;
* wire encode/decode of requests and responses through
  :mod:`repro.rpc.marshal`;
* a pool of worker threads on each VM that performs RPCs on behalf of
  the other VM (modelled, with occupancy statistics — execution itself
  is serial, as the paper's emulator assumes);
* an explicit RMI-style call API (used with :class:`~repro.rpc.proxy.RemoteProxy`).

Timing and traffic are charged exactly once, by the execution context's
runtime, when the underlying invocation crosses sites.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator

from ..errors import RemoteInvocationError
from ..vm.objectmodel import JObject

if TYPE_CHECKING:  # avoid a circular import with repro.vm.context
    from ..vm.context import ExecutionContext
from .marshal import decode_value, encode_value
from .proxy import RemoteStub
from .refmap import ReferenceMap


class WorkerPool:
    """Occupancy model of one VM's RPC service threads."""

    def __init__(self, size: int = 4) -> None:
        if size < 1:
            raise RemoteInvocationError("worker pool needs at least one thread")
        self.size = size
        self.in_flight = 0
        self.served = 0
        self.peak_in_flight = 0

    @contextmanager
    def serve(self) -> Iterator[None]:
        if self.in_flight >= self.size:
            raise RemoteInvocationError(
                f"worker pool exhausted ({self.size} threads)"
            )
        self.in_flight += 1
        self.served += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        try:
            yield
        finally:
            self.in_flight -= 1


class RpcChannel:
    """Bidirectional RPC between the two sites of one execution context."""

    def __init__(
        self, ctx: "ExecutionContext", site_a: str, site_b: str,
        pool_size: int = 4,
    ) -> None:
        if site_a == site_b:
            raise RemoteInvocationError("a channel joins two distinct sites")
        self.ctx = ctx
        self.sites = (site_a, site_b)
        self.exports: Dict[str, ReferenceMap] = {
            site_a: ReferenceMap(site_a),
            site_b: ReferenceMap(site_b),
        }
        self.pools: Dict[str, WorkerPool] = {
            site_a: WorkerPool(pool_size),
            site_b: WorkerPool(pool_size),
        }

    # -- stubs ------------------------------------------------------------

    def _map_for(self, site: str) -> ReferenceMap:
        try:
            return self.exports[site]
        except KeyError:
            raise RemoteInvocationError(
                f"site {site!r} is not an endpoint of this channel"
            ) from None

    def stub_for(self, obj: JObject) -> RemoteStub:
        """Export ``obj`` from its home VM and return a peer-side stub."""
        handle = self._map_for(obj.home).export(obj)
        return RemoteStub(peer=obj.home, handle=handle, class_name=obj.class_name)

    def resolve(self, stub: RemoteStub) -> JObject:
        """Translate a stub back into the live exported object."""
        return self._map_for(stub.peer).resolve(stub.handle)

    # -- wire helpers -----------------------------------------------------------

    def _encode(self, value: Any) -> Any:
        def export_ref(obj: JObject) -> Dict[str, Any]:
            return {
                "owner": obj.home,
                "handle": self._map_for(obj.home).export(obj),
            }

        return encode_value(value, export_ref)

    def _decode(self, encoded: Any) -> Any:
        def resolve_ref(token: Any) -> JObject:
            if (
                not isinstance(token, dict)
                or "owner" not in token
                or "handle" not in token
            ):
                raise RemoteInvocationError(
                    f"malformed reference token {token!r}"
                )
            return self._map_for(token["owner"]).resolve(token["handle"])

        return decode_value(encoded, resolve_ref)

    # -- explicit RPC API ---------------------------------------------------------

    def call(self, stub: RemoteStub, method: str, *args: Any) -> Any:
        """Invoke a method on the remote object named by ``stub``.

        The arguments make a genuine wire round trip: object references
        are translated to handles in their owner's namespace, decoded on
        the serving side, and the result travels back the same way.
        """
        target = self.resolve(stub)
        request = {
            "op": "invoke",
            "handle": stub.handle,
            "method": method,
            "args": [self._encode(arg) for arg in args],
        }
        with self.pools[target.home].serve():
            decoded_args = [self._decode(arg) for arg in request["args"]]
            result = self.ctx.invoke(target, method, *decoded_args)
        response = {"op": "result", "value": self._encode(result)}
        return self._decode(response["value"])

    def get_field(self, stub: RemoteStub, field_name: str) -> Any:
        target = self.resolve(stub)
        with self.pools[target.home].serve():
            value = self.ctx.get_field(target, field_name)
        return self._decode(self._encode(value))

    def set_field(self, stub: RemoteStub, field_name: str, value: Any) -> None:
        target = self.resolve(stub)
        encoded = self._encode(value)
        with self.pools[target.home].serve():
            self.ctx.set_field(target, field_name, self._decode(encoded))
