"""Cross-VM object reference mapping.

Each JVM has a private object-reference namespace and cannot interpret a
reference from another VM (paper section 3.2).  A :class:`ReferenceMap`
is one VM's export table: local objects are registered under small
integer *handles*, which are what actually travel on the wire.  The
receiving VM resolves a handle back through the sender's map, keeping
stub-style placeholders (:mod:`repro.rpc.proxy`) where it wants a local
face for the remote object.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..errors import ReferenceMappingError
from ..vm.objectmodel import JObject


class ReferenceMap:
    """Export table for one VM: local object <-> wire handle."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._by_handle: Dict[int, JObject] = {}
        self._by_oid: Dict[int, int] = {}
        self._next_handle = 1

    def export(self, obj: JObject) -> int:
        """Register ``obj`` (idempotently) and return its handle."""
        if obj is None:
            raise ReferenceMappingError("cannot export a null reference")
        if not obj.alive:
            raise ReferenceMappingError(f"cannot export dead object {obj!r}")
        handle = self._by_oid.get(obj.oid)
        if handle is not None:
            return handle
        handle = self._next_handle
        self._next_handle += 1
        self._by_handle[handle] = obj
        self._by_oid[obj.oid] = handle
        return handle

    def resolve(self, handle: int) -> JObject:
        """Translate a handle back to the exported object."""
        obj = self._by_handle.get(handle)
        if obj is None:
            raise ReferenceMappingError(
                f"{self.owner}: unknown reference handle {handle}"
            )
        if not obj.alive:
            raise ReferenceMappingError(
                f"{self.owner}: handle {handle} refers to a collected object"
            )
        return obj

    def is_exported(self, obj: JObject) -> bool:
        return obj.oid in self._by_oid

    def handle_for(self, obj: JObject) -> int:
        handle = self._by_oid.get(obj.oid)
        if handle is None:
            raise ReferenceMappingError(
                f"{self.owner}: object {obj!r} was never exported"
            )
        return handle

    def forget(self, handle: int) -> None:
        """Drop an export (the distributed GC's release path)."""
        obj = self._by_handle.pop(handle, None)
        if obj is None:
            raise ReferenceMappingError(
                f"{self.owner}: cannot forget unknown handle {handle}"
            )
        del self._by_oid[obj.oid]

    def clear(self) -> int:
        """Drop every export; returns how many handles were discarded.

        Used by the recovery path after a surrogate death: the peer can
        no longer resolve any handle, and the repatriated objects get
        fresh exports if a replacement surrogate is attached.
        """
        count = len(self._by_handle)
        self._by_handle.clear()
        self._by_oid.clear()
        return count

    def prune_dead(self) -> int:
        """Remove exports whose objects have been collected; return count."""
        dead = [h for h, obj in self._by_handle.items() if not obj.alive]
        for handle in dead:
            self.forget(handle)
        return len(dead)

    def exported_objects(self) -> List[JObject]:
        return list(self._by_handle.values())

    def __len__(self) -> int:
        return len(self._by_handle)

    def __iter__(self) -> Iterator[int]:
        return iter(self._by_handle)
