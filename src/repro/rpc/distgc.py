"""Distributed garbage collection support.

The paper supports "a simple distributed garbage collection scheme to
account for objects that are referenced from the other VM".  Two pieces
reproduce that here:

* :class:`CrossHeapRootScanner` — a GC root source installed on each VM
  that treats a local object as live when any object on the *peer* heap
  (or any export-table entry) still references it.  This is the safety
  net that stops a VM from collecting an object the other VM can reach.
* :func:`reconcile_exports` — the reclamation path: export-table entries
  whose objects are no longer referenced from the peer side are dropped,
  so purely-remote garbage eventually becomes locally collectable.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Set

from ..vm.objectmodel import JObject
from ..vm.vm import VirtualMachine
from .refmap import ReferenceMap


def _references_into(
    source_vm: VirtualMachine, target_site: str
) -> List[JObject]:
    """Objects homed on ``target_site`` referenced from ``source_vm``'s heap."""
    found: List[JObject] = []
    for obj in source_vm.heap.objects():
        for ref in obj.references():
            if ref.home == target_site:
                found.append(ref)
    return found


class CrossHeapRootScanner:
    """Root source: local objects kept alive by the peer VM.

    Install the scanner's :meth:`roots` on the local VM via
    ``vm.add_root_source``.  Exported objects are conservatively treated
    as live until :func:`reconcile_exports` drops them, mirroring the
    way a real distributed scheme pins exports between epochs.
    """

    def __init__(
        self,
        local_vm: VirtualMachine,
        peer_vm: VirtualMachine,
        exports: ReferenceMap,
        extra_peer_roots: Callable[[], Iterable[JObject]] = tuple,
    ) -> None:
        self.local_vm = local_vm
        self.peer_vm = peer_vm
        self.exports = exports
        self._extra_peer_roots = extra_peer_roots

    def roots(self) -> List[JObject]:
        roots = _references_into(self.peer_vm, self.local_vm.name)
        roots.extend(
            obj for obj in self.exports.exported_objects() if obj.alive
        )
        for obj in self._extra_peer_roots():
            if obj.home == self.local_vm.name:
                roots.append(obj)
        return roots


def peer_reachable_oids(
    peer_vm: VirtualMachine,
    target_site: str,
    extra_peer_roots: Callable[[], Iterable[JObject]] = tuple,
) -> Set[int]:
    """Oids of ``target_site`` objects currently reachable from the peer."""
    reachable = {
        obj.oid for obj in _references_into(peer_vm, target_site)
    }
    for obj in extra_peer_roots():
        if obj.home == target_site:
            reachable.add(obj.oid)
    return reachable


def reconcile_exports(
    exports: ReferenceMap,
    peer_vm: VirtualMachine,
    target_site: str,
    extra_peer_roots: Callable[[], Iterable[JObject]] = tuple,
) -> int:
    """Drop exports no longer referenced from the peer; return the count.

    After reconciliation a previously-exported object that only the peer
    kept alive becomes ordinary local garbage — the "offloaded garbage"
    situation the paper flags for future study.
    """
    exports.prune_dead()
    reachable = peer_reachable_oids(peer_vm, target_site, extra_peer_roots)
    stale = [
        exports.handle_for(obj)
        for obj in exports.exported_objects()
        if obj.oid not in reachable
    ]
    for handle in stale:
        exports.forget(handle)
    return len(stale)
