"""Coalescing RPC: one wire exchange for a run of remote operations.

The naive cross-site data plane charges every remote operation its own
request/response exchange — two message headers and a full WaveLAN
round trip, even for a 4-byte field write.  Chatty traces (Dia's widget
tree walking, JavaNote's buffer bookkeeping) are full of *runs* of
same-direction operations, and a run can ride one wire exchange:

* **writes** carry no result, so they buffer — their payload is charged
  when the batch flushes, their round trip never happens;
* **reads and invocations** need their response before the (serial)
  guest can continue, so they close the batch *including themselves*:
  the request leg carries every buffered payload plus the closing op,
  the response leg carries the closing op's value plus the batched acks;
* a **direction change** (the other site starts initiating, e.g. after
  control transfers into a remote method) flushes, because the buffered
  requests must reach the responder before it can proceed;
* **GC and repartition barriers** flush, so collection pauses and
  migration decisions never observe un-charged traffic.

The result is serial-equivalent: every operation still happens at the
same point in the execution order and every payload byte is eventually
charged; only the per-operation headers and round trips collapse.  A
batch of N operations costs one header per leg and one round trip
instead of N of each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..net.link import LinkModel
from .cache import CacheStats, RemoteReadCache
from .marshal import MESSAGE_HEADER_BYTES

#: Flush reasons, kept as constants so stats and tests agree on names.
FLUSH_DIRECTION = "direction-change"
FLUSH_RESULT = "result-dependency"
FLUSH_GC = "gc-barrier"
FLUSH_MIGRATION = "migration-barrier"
FLUSH_SHUTDOWN = "shutdown"
#: Not a flush: the batch was discarded un-charged because the
#: surrogate died with it in flight (recovery drains, it never lands).
DROP_RECOVERY = "recovery-drop"


@dataclass(frozen=True)
class DataPlaneConfig:
    """Which cross-site data-plane optimisations are active.

    Everything defaults to *off*, which keeps the naive path's byte and
    latency accounting bit-identical to the unoptimised platform — the
    parity suite replays traces under both settings and asserts equal
    execution graphs and migration decisions.
    """

    coalescing: bool = False
    read_cache: bool = False
    pipelined_migration: bool = False
    #: Modelled service time of one backlogged RPC in the serving VM's
    #: worker pool (see :class:`repro.rpc.channel.WorkerPool`).  Not an
    #: optimisation toggle — it parameterises the queueing-delay model,
    #: so fleet studies can emulate faster or slower surrogate CPUs.
    #: The default matches the historical hardcoded 1.2 ms quantum.
    service_quantum_s: float = 1.2e-3

    @classmethod
    def off(cls) -> "DataPlaneConfig":
        return cls(False, False, False)

    @classmethod
    def enabled(cls) -> "DataPlaneConfig":
        return cls(True, True, True)

    @property
    def any_enabled(self) -> bool:
        return self.coalescing or self.read_cache or self.pipelined_migration

    def label(self) -> str:
        if not self.any_enabled:
            return "naive"
        parts = []
        if self.coalescing:
            parts.append("coalesce")
        if self.read_cache:
            parts.append("cache")
        if self.pipelined_migration:
            parts.append("pipeline")
        return "+".join(parts)


@dataclass
class DataPlaneStats:
    """Accounting for one run of the optimised data plane.

    ``naive_*`` mirrors what the unbatched path would have charged for
    the same operation stream, so reports can state savings without
    replaying twice.
    """

    ops: int = 0
    batches: int = 0
    wire_messages: int = 0
    wire_bytes: int = 0
    naive_messages: int = 0
    naive_bytes: int = 0
    naive_seconds: float = 0.0
    actual_seconds: float = 0.0
    flushes: Dict[str, int] = field(default_factory=dict)
    cache: CacheStats = field(default_factory=CacheStats)
    #: Batches discarded un-applied because the surrogate died with
    #: them in flight (their ops were lost, not charged).
    dropped_batches: int = 0
    dropped_ops: int = 0

    @property
    def rtts_saved(self) -> int:
        """Round trips that never happened: coalescing plus cache hits."""
        return (self.ops - self.batches) + self.cache.hits

    @property
    def bytes_saved(self) -> int:
        return self.naive_bytes - self.wire_bytes

    @property
    def seconds_saved(self) -> float:
        return self.naive_seconds - self.actual_seconds

    def note_flush(self, reason: str) -> None:
        self.flushes[reason] = self.flushes.get(reason, 0) + 1

    def as_dict(self) -> dict:
        """JSON-able summary (benchmark report, platform report)."""
        return {
            "ops": self.ops,
            "batches": self.batches,
            "rtts_saved": self.rtts_saved,
            "wire_messages": self.wire_messages,
            "wire_bytes": self.wire_bytes,
            "naive_messages": self.naive_messages,
            "naive_bytes": self.naive_bytes,
            "bytes_saved": self.bytes_saved,
            "seconds_saved": self.seconds_saved,
            "flushes": dict(self.flushes),
            "dropped_batches": self.dropped_batches,
            "dropped_ops": self.dropped_ops,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": self.cache.hit_rate,
            "cache_invalidations": self.cache.invalidations,
        }


class RpcCoalescer:
    """Aggregates same-direction remote operations into wire batches.

    ``transfer(from_site, to_site, nbytes)`` performs the actual charge
    (clock advance plus traffic recording) — the live platform passes
    its runtime's transfer, the emulator a comm-time charger — so the
    coalescer owns only the batching discipline and its accounting.
    """

    def __init__(
        self,
        link: LinkModel,
        transfer: Callable[[str, str, int], None],
        stats: Optional[DataPlaneStats] = None,
    ) -> None:
        self.link = link
        self._transfer = transfer
        self.stats = stats if stats is not None else DataPlaneStats()
        self._direction: Optional[Tuple[str, str]] = None
        self._pending_ops = 0
        self._out_bytes = 0
        self._back_bytes = 0
        #: Sequence number of the last batch put on the wire.  Batches
        #: are numbered so the retransmission layer
        #: (:class:`~repro.rpc.retry.ReliableDelivery`) can recognise a
        #: retried batch and apply it exactly once.
        self.last_seq = 0

    # -- the operation stream ---------------------------------------------

    @property
    def pending_ops(self) -> int:
        return self._pending_ops

    def write(self, initiator: str, responder: str, nbytes: int) -> None:
        """A remote write: value out, ack back, no result — buffers."""
        self._append(initiator, responder, out=nbytes, back=0)

    def read(self, initiator: str, responder: str, nbytes: int) -> None:
        """A remote read: empty request out, value back — closes."""
        self._append(initiator, responder, out=0, back=nbytes)
        self.flush(FLUSH_RESULT)

    def invoke(self, initiator: str, responder: str, arg_bytes: int,
               ret_bytes: int) -> None:
        """A remote invocation: control transfers, so it closes."""
        self._append(initiator, responder, out=arg_bytes, back=ret_bytes)
        self.flush(FLUSH_RESULT)

    def _append(self, initiator: str, responder: str, out: int,
                back: int) -> None:
        direction = (initiator, responder)
        if self._pending_ops and direction != self._direction:
            self.flush(FLUSH_DIRECTION)
        self._direction = direction
        self._pending_ops += 1
        self._out_bytes += out
        self._back_bytes += back
        # What the unbatched path would have charged for this op: two
        # headered messages and a full round trip.
        stats = self.stats
        stats.ops += 1
        stats.naive_messages += 2
        request = MESSAGE_HEADER_BYTES + out
        response = MESSAGE_HEADER_BYTES + back
        stats.naive_bytes += request + response
        stats.naive_seconds += (
            self.link.one_way(request) + self.link.one_way(response)
        )

    # -- flushing ----------------------------------------------------------

    def flush(self, reason: str = FLUSH_SHUTDOWN) -> None:
        """Charge the pending batch as one request/response exchange."""
        if not self._pending_ops:
            return
        initiator, responder = self._direction
        request = MESSAGE_HEADER_BYTES + self._out_bytes
        response = MESSAGE_HEADER_BYTES + self._back_bytes
        stats = self.stats
        stats.batches += 1
        stats.wire_messages += 2
        stats.wire_bytes += request + response
        stats.actual_seconds += (
            self.link.one_way(request) + self.link.one_way(response)
        )
        stats.note_flush(reason)
        self._pending_ops = 0
        self._out_bytes = 0
        self._back_bytes = 0
        self._direction = None
        self.last_seq += 1
        self._transfer(initiator, responder, request)
        self._transfer(responder, initiator, response)

    def drop_pending(self) -> int:
        """Discard the in-flight batch un-charged (surrogate death).

        The buffered operations were lost with the peer: they are
        *not* transferred and their bytes never reach the wire — the
        recovery path reconstructs their effects client-side instead.
        Returns the number of operations dropped.
        """
        dropped = self._pending_ops
        if dropped:
            stats = self.stats
            stats.dropped_batches += 1
            stats.dropped_ops += dropped
            stats.note_flush(DROP_RECOVERY)
        self._pending_ops = 0
        self._out_bytes = 0
        self._back_bytes = 0
        self._direction = None
        return dropped

    def gc_barrier(self) -> None:
        """Flush before a collection cycle's pause accounting."""
        self.flush(FLUSH_GC)

    def migration_barrier(self) -> None:
        """Flush before a partitioning decision or placement change."""
        self.flush(FLUSH_MIGRATION)


class DataPlane:
    """The live platform's bundle of data-plane optimisations.

    One per :class:`~repro.platform.platform.DistributedPlatform` run:
    the coalescer and cache share a single stats block, and the members
    are ``None`` for whichever optimisations the config leaves off, so
    callers can gate on attribute presence instead of re-reading flags.
    """

    def __init__(
        self,
        config: DataPlaneConfig,
        link: LinkModel,
        transfer: Callable[[str, str, int], None],
    ) -> None:
        self.config = config
        self.stats = DataPlaneStats()
        self.cache: Optional[RemoteReadCache] = (
            RemoteReadCache() if config.read_cache else None
        )
        if self.cache is not None:
            self.stats.cache = self.cache.stats
        self.coalescer: Optional[RpcCoalescer] = (
            RpcCoalescer(link, transfer, stats=self.stats)
            if config.coalescing else None
        )

    def flush(self, reason: str = FLUSH_SHUTDOWN) -> None:
        if self.coalescer is not None:
            self.coalescer.flush(reason)

    def drop_pending(self) -> int:
        """Surrogate death: discard the in-flight batch un-charged."""
        if self.coalescer is not None:
            return self.coalescer.drop_pending()
        return 0

    def gc_barrier(self) -> None:
        if self.coalescer is not None:
            self.coalescer.gc_barrier()

    def migration_barrier(self) -> None:
        """Flush pending traffic *before* a placement is applied."""
        if self.coalescer is not None:
            self.coalescer.migration_barrier()

    def note_migration(self) -> None:
        """A placement was applied: residency changed, drop the cache."""
        if self.cache is not None:
            self.cache.invalidate_all()

    def note_free(self, oid: int) -> None:
        """The owner of ``oid`` was collected: drop its cache entry."""
        if self.cache is not None:
            self.cache.invalidate(oid)
