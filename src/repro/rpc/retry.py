"""Timeouts, bounded backoff, and idempotent retransmission.

The recovery half of the fault-injection story
(:mod:`repro.net.faults`).  :class:`ReliableDelivery` fronts every
cross-site exchange with the classic RPC discipline:

* a retransmission **timeout** bounds how long the sender waits for a
  response before trying again;
* retries back off **exponentially with jitter**, the jitter drawn from
  the fault schedule's seeded RNG so a retried run replays identically;
* every exchange carries a **sequence number**, and the apply callback
  runs **exactly once** per sequence number — a retransmission whose
  original *request* got through (only the acknowledgement was lost) is
  recognised as a duplicate and acknowledged without re-applying;
* after ``max_retries`` consecutive losses the peer is **declared
  dead** and the ``on_peer_lost`` callback runs (the platform's cue to
  drain in-flight batches and fall back to client-only execution).

All waiting is charged to the emulated clock through the ``charge``
callback; nothing here sleeps or reads wall time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..errors import ConfigurationError
from ..net.faults import FaultSchedule


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for cross-site exchanges.

    Attempt *i* (0-based) that times out charges ``timeout_s`` plus
    ``backoff(i)`` before the next try; after ``max_retries`` failed
    retries the peer is declared dead.  ``give_up_s`` is the worst-case
    time spent before declaring death — callers use it as the patience
    budget for link partitions too (a partition that will outlast the
    full retry ladder is treated as a dead peer immediately, after
    charging the ladder).
    """

    timeout_s: float = 0.025
    max_retries: int = 4
    backoff_base_s: float = 0.010
    backoff_cap_s: float = 0.160
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ConfigurationError("backoff bounds are inconsistent")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry ``attempt`` (0-based), jittered."""
        base = min(self.backoff_cap_s, self.backoff_base_s * (2 ** attempt))
        if self.jitter:
            # Uniform in [1 - jitter/2, 1 + jitter/2]: full backoff on
            # average, spread enough to break retry synchronisation.
            base *= 1.0 + self.jitter * (rng.random() - 0.5)
        return base

    @property
    def give_up_s(self) -> float:
        """Worst-case charged time before declaring the peer dead."""
        total = 0.0
        for attempt in range(self.max_retries):
            base = min(self.backoff_cap_s,
                       self.backoff_base_s * (2 ** attempt))
            total += self.timeout_s + base * (1.0 + self.jitter / 2)
        return total + self.timeout_s


class ReliableDelivery:
    """Sequence-numbered at-most-once delivery over a faulty link.

    ``charge(seconds)`` advances the emulated clock; ``counters`` (any
    object with ``retries``/``timeouts``/``fault_time_s`` attributes —
    :class:`~repro.core.monitor.RemoteCounters` on the live platform,
    :class:`~repro.net.faults.FaultReport` in the emulator) receives
    the bookkeeping.  ``events`` supplies the caller's event index for
    ``crash_at_event`` checks; it defaults to this delivery's own
    exchange counter.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        schedule: Optional[FaultSchedule] = None,
        charge: Optional[Callable[[float], None]] = None,
        counters: Any = None,
        now: Optional[Callable[[], float]] = None,
        events: Optional[Callable[[], int]] = None,
        on_peer_lost: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.policy = policy
        self.schedule = schedule
        self._charge = charge if charge is not None else (lambda s: None)
        self.counters = counters
        self._now = now if now is not None else (lambda: 0.0)
        self._events = events if events is not None else (lambda: self.exchanges)
        self._on_peer_lost = on_peer_lost
        self.exchanges = 0
        self.peer_dead = False
        self.duplicates_suppressed = 0
        self._next_seq = 1

    # -- bookkeeping helpers -----------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        counters = self.counters
        if counters is not None and hasattr(counters, name):
            setattr(counters, name, getattr(counters, name) + amount)

    def _charge_fault(self, seconds: float) -> None:
        self._charge(seconds)
        counters = self.counters
        if counters is not None and hasattr(counters, "fault_time_s"):
            counters.fault_time_s += seconds

    def _declare_dead(self, reason: str) -> None:
        if self.peer_dead:
            return
        self.peer_dead = True
        counters = self.counters
        if counters is not None and hasattr(counters, "surrogate_lost"):
            counters.surrogate_lost = True
            counters.lost_reason = reason
        if self._on_peer_lost is not None:
            self._on_peer_lost(reason)

    def revive(self) -> None:
        """A (replacement) peer was discovered; exchanges may resume."""
        self.peer_dead = False
        if self.schedule is not None:
            self.schedule.revive()

    # -- the exchange ------------------------------------------------------

    def exchange(
        self, apply: Optional[Callable[[], Any]] = None,
    ) -> Tuple[bool, Any]:
        """Run one request/response exchange through the fault gauntlet.

        Returns ``(delivered, result)``.  ``apply`` is the exchange's
        effect (charging the wire, running the serving-side operation);
        it runs exactly once per sequence number even when the exchange
        is retransmitted, and not at all when the peer is declared dead
        before the *request* ever arrives.
        """
        seq = self._next_seq
        self._next_seq += 1
        applied = False
        result = None

        def apply_once():
            nonlocal applied, result
            if applied:
                # The retransmitted request carried an already-applied
                # sequence number: acknowledge, don't re-apply.
                self.duplicates_suppressed += 1
                self._count("duplicates_suppressed")
                return
            applied = True
            if apply is not None:
                result = apply()

        if self.peer_dead:
            return False, None
        schedule = self.schedule
        policy = self.policy
        if schedule is None:
            self.exchanges += 1
            apply_once()
            return True, result

        if schedule.crashed(self._events(), self._now()):
            # The peer is gone; the sender only learns that by running
            # the full retry ladder against silence.
            self._charge_fault(policy.give_up_s)
            self._count("timeouts", policy.max_retries + 1)
            self._count("retries", policy.max_retries)
            self._declare_dead("crash")
            return False, None

        until = schedule.partition_until(self._now())
        if until is not None:
            wait = until - self._now()
            if wait > policy.give_up_s:
                # The outage will outlast every retry: the sender
                # exhausts its ladder and declares the peer dead.
                self._charge_fault(policy.give_up_s)
                self._count("timeouts", policy.max_retries + 1)
                self._count("retries", policy.max_retries)
                self._count("partition_waits")
                self._declare_dead("partition")
                return False, None
            # Short outage: the first retransmission after the window
            # heals gets through; the sender just waits it out.
            self._charge_fault(wait)
            self._count("partition_waits")

        attempt = 0
        while schedule.drops_message():
            if schedule.lost_leg_is_ack():
                # The request arrived and was applied; only the
                # acknowledgement vanished.  The retransmission below
                # must be deduplicated, not re-applied.
                apply_once()
            if attempt >= policy.max_retries:
                self._declare_dead("loss")
                return False, None
            self._charge_fault(
                policy.timeout_s + policy.backoff(attempt, schedule.rng)
            )
            self._count("retries")
            self._count("timeouts")
            attempt += 1

        spike = schedule.latency_spike()
        if spike:
            self._charge_fault(spike)
            self._count("latency_spikes")
        self.exchanges += 1
        apply_once()
        return True, result

    def attempt(self) -> bool:
        """An exchange with no payload effect; True when delivered."""
        delivered, _ = self.exchange(None)
        return delivered


__all__ = ["ReliableDelivery", "RetryPolicy"]
