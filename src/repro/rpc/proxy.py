"""Remote object stubs.

A :class:`RemoteStub` is the local placeholder a VM keeps for an object
living on its peer — the paper's "stub local references for remote
objects".  :class:`RemoteProxy` layers a convenience API on top of a
stub and a channel for explicitly RMI-style use (the transparent path in
:mod:`repro.vm.context` does not need proxies, because placement routing
happens inside the platform).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class RemoteStub:
    """A local placeholder naming an object exported by a peer VM."""

    peer: str
    handle: int
    class_name: str

    def __repr__(self) -> str:
        return f"<stub {self.class_name}@{self.peer}:{self.handle}>"


class RemoteProxy:
    """Explicit call interface over a stub.

    >>> proxy = RemoteProxy(channel, stub)        # doctest: +SKIP
    >>> proxy.invoke("render", 640, 480)          # doctest: +SKIP
    """

    def __init__(self, channel: "RpcChannel", stub: RemoteStub) -> None:
        self._channel = channel
        self._stub = stub

    @property
    def stub(self) -> RemoteStub:
        return self._stub

    def invoke(self, method: str, *args: Any) -> Any:
        return self._channel.call(self._stub, method, *args)

    def get(self, field_name: str) -> Any:
        return self._channel.get_field(self._stub, field_name)

    def set(self, field_name: str, value: Any) -> None:
        self._channel.set_field(self._stub, field_name, value)
