"""Remote invocation: marshalling, reference maps, stubs, and channels."""

from .batch import (
    DataPlane,
    DataPlaneConfig,
    DataPlaneStats,
    RpcCoalescer,
)
from .cache import CacheStats, RemoteReadCache
from .channel import RpcChannel, WorkerPool
from .distgc import CrossHeapRootScanner, peer_reachable_oids, reconcile_exports
from .marshal import (
    MESSAGE_HEADER_BYTES,
    REFERENCE_BYTES,
    WIRE_FORMAT_VERSION,
    InternTable,
    WireCodec,
    args_size,
    decode_value,
    deep_size,
    encode_value,
    message_size,
    reset_size_cache,
)
from .proxy import RemoteProxy, RemoteStub
from .refmap import ReferenceMap
from .retry import ReliableDelivery, RetryPolicy

__all__ = [
    "CacheStats",
    "CrossHeapRootScanner",
    "DataPlane",
    "DataPlaneConfig",
    "DataPlaneStats",
    "InternTable",
    "MESSAGE_HEADER_BYTES",
    "REFERENCE_BYTES",
    "ReferenceMap",
    "ReliableDelivery",
    "RemoteProxy",
    "RemoteReadCache",
    "RemoteStub",
    "RetryPolicy",
    "RpcChannel",
    "RpcCoalescer",
    "WIRE_FORMAT_VERSION",
    "WireCodec",
    "WorkerPool",
    "args_size",
    "decode_value",
    "deep_size",
    "encode_value",
    "message_size",
    "peer_reachable_oids",
    "reconcile_exports",
    "reset_size_cache",
]
