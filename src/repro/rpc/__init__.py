"""Remote invocation: marshalling, reference maps, stubs, and channels."""

from .channel import RpcChannel, WorkerPool
from .distgc import CrossHeapRootScanner, peer_reachable_oids, reconcile_exports
from .marshal import (
    MESSAGE_HEADER_BYTES,
    REFERENCE_BYTES,
    args_size,
    decode_value,
    deep_size,
    encode_value,
    message_size,
)
from .proxy import RemoteProxy, RemoteStub
from .refmap import ReferenceMap

__all__ = [
    "CrossHeapRootScanner",
    "MESSAGE_HEADER_BYTES",
    "REFERENCE_BYTES",
    "ReferenceMap",
    "RemoteProxy",
    "RemoteStub",
    "RpcChannel",
    "WorkerPool",
    "args_size",
    "decode_value",
    "deep_size",
    "encode_value",
    "message_size",
    "peer_reachable_oids",
    "reconcile_exports",
]
