"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro table1 fig5
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict


def _table1() -> str:
    from .experiments import format_catalog, run_catalog

    return format_catalog(run_catalog())


def _fig5() -> str:
    from .experiments import format_memory_rescue, run_memory_rescue

    return format_memory_rescue(run_memory_rescue())


def _fig6() -> str:
    from .experiments import format_overheads, run_all_overheads

    return format_overheads(run_all_overheads())


def _fig7() -> str:
    from .experiments import format_policy_sweeps, run_all_policy_sweeps

    return format_policy_sweeps(run_all_policy_sweeps())


def _fig8() -> str:
    from .experiments import format_native_shares, run_all_native_shares

    return format_native_shares(run_all_native_shares())


def _table2() -> str:
    from .experiments import format_monitoring, run_monitoring_overhead

    return format_monitoring(run_monitoring_overhead())


def _fig10() -> str:
    from .experiments import format_cpu_offloads, run_all_cpu_offloads

    return format_cpu_offloads(run_all_cpu_offloads())


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": _table1,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "table2": _table2,
    "fig10": _fig10,
}

DESCRIPTIONS = {
    "table1": "application catalog",
    "fig5": "JavaNote memory rescue (prototype)",
    "fig6": "remote execution overhead, initial policy",
    "fig7": "policy sweep (slowest: ~30s)",
    "fig8": "native share of remote invocations",
    "table2": "execution metrics + monitoring overhead",
    "fig10": "offloading under processing constraints",
}


def _record(app_name: str, path: str) -> int:
    from .apps import ALL_APPLICATIONS
    from .emulator import record_application

    by_name = {cls().name: cls for cls in ALL_APPLICATIONS}
    if app_name not in by_name:
        print(f"unknown application {app_name!r}; one of "
              f"{', '.join(sorted(by_name))}", file=sys.stderr)
        return 2
    trace = record_application(by_name[app_name]())
    trace.save(path)
    print(f"recorded {len(trace)} events from {app_name!r} to {path}")
    return 0


def _load_trace(source: str):
    """Load a saved trace file (JSONL or .ctrace), or record a bundled
    app by name."""
    import os

    from .emulator import load_any

    if os.path.exists(source):
        return load_any(source)
    from .apps import ALL_APPLICATIONS
    from .emulator import record_application

    by_name = {cls().name: cls for cls in ALL_APPLICATIONS}
    if source in by_name:
        return record_application(by_name[source]())
    raise FileNotFoundError(
        f"{source!r} is neither a trace file nor a bundled app "
        f"(apps: {', '.join(sorted(by_name))})")


def _convert(src: str, dst: str) -> int:
    """``trace convert``: JSONL <-> columnar, by destination suffix."""
    from .emulator import ColumnarTrace, write_ctrace
    from .errors import TraceFormatError

    try:
        trace = _load_trace(src)
    except (FileNotFoundError, TraceFormatError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if dst.endswith(".ctrace"):
        write_ctrace(trace, dst)
        kind = "columnar"
    else:
        if isinstance(trace, ColumnarTrace):
            trace = trace.to_trace()
        trace.save(dst)
        kind = "jsonl"
    print(f"converted {len(trace)} events of {trace.app_name!r} "
          f"to {kind} at {dst}")
    return 0


def _replay(source: str, heap_mb: float, offload: bool,
            faults: str = None, workers: int = 1, clients: int = 1,
            trace_format: str = "auto", link_profile: str = None,
            mobility: str = "handoff") -> int:
    from .config import DeviceProfile
    from .emulator import (
        ColumnarTrace, Emulator, EmulatorConfig, MobilityConfig,
        ShardedReplayer, replicate,
    )
    from .net.faults import FaultSpec
    from .net.mobility import LinkProfile
    from .units import MB

    try:
        trace = _load_trace(source)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    if trace_format == "ctrace":
        trace = ColumnarTrace.from_trace(trace)
    elif trace_format == "jsonl" and isinstance(trace, ColumnarTrace):
        trace = trace.to_trace()
    config = EmulatorConfig(
        client=DeviceProfile("client-dev", cpu_speed=1.0,
                             heap_capacity=int(heap_mb * MB)),
        offload_enabled=offload,
    )
    if faults:
        from .errors import ConfigurationError

        try:
            config = config.with_faults(FaultSpec.parse(faults))
        except (ConfigurationError, ValueError) as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2
    if link_profile:
        from .errors import ConfigurationError

        try:
            profile = LinkProfile.parse(link_profile)
            mob = None if mobility == "none" else MobilityConfig(mode=mobility)
            config = config.with_profile(profile, mob)
        except (ConfigurationError, ValueError) as exc:
            print(f"bad --link-profile spec: {exc}", file=sys.stderr)
            return 2
    if clients > 1 or workers > 1:
        shards = replicate(trace, config, clients=max(clients, 1))
        aggregate = ShardedReplayer(shards, workers=workers).run()
        print(f"replayed {aggregate.events_processed} events of "
              f"{trace.app_name!r} across {len(shards)} client(s) "
              f"on {aggregate.workers} worker(s)")
        print(f"  completed: {aggregate.completed_clients}/"
              f"{len(shards)} clients "
              f"({aggregate.oom_clients} out of memory)")
        print(f"  wall time: {aggregate.wall_time_s:.2f}s "
              f"({aggregate.events_per_second / 1e6:.2f}M ev/s aggregate)")
        print(f"  fingerprint: {aggregate.fingerprint()}")
        return 0 if aggregate.completed_clients == len(shards) else 1
    result = Emulator(trace).replay(config)
    print(f"replayed {result.events_processed} events of "
          f"{trace.app_name!r} (heap {heap_mb:g}MB, "
          f"offload={'on' if offload else 'off'})")
    print(f"  completed: {result.completed}"
          + ("" if result.completed else
             f" (out of memory at t={result.oom_time:.1f}s)"))
    print(f"  total time: {result.total_time:.1f}s "
          f"(comm {result.comm_time:.1f}s, "
          f"migration {result.migration_time:.1f}s)")
    print(f"  offloads: {result.offload_count}, remote interactions: "
          f"{result.remote_interactions}")
    if result.mobility is not None:
        mr = result.mobility
        print(f"  mobility [{mr.profile}]: {mr.link_changes} link "
              f"change(s), {mr.trend_fires} trend fire(s)")
        if mr.handoffs or mr.proactive_repatriations or mr.reoffloads:
            print(f"    handoffs: {mr.handoffs} "
                  f"({mr.handoff_bytes} bytes, {mr.handoff_time_s:.2f}s), "
                  f"proactive repatriations: {mr.proactive_repatriations} "
                  f"({mr.proactively_repatriated_bytes} bytes), "
                  f"reoffloads: {mr.reoffloads}")
    if result.faults is not None:
        fr = result.faults
        print(f"  faults [{fr.spec}]: fault time {fr.fault_time_s:.1f}s, "
              f"{fr.retries} retries, {fr.timeouts} timeouts, "
              f"{fr.duplicates_suppressed} duplicates suppressed")
        if fr.surrogate_lost or fr.recoveries:
            print(f"    surrogate lost ({fr.lost_reason}): "
                  f"{fr.objects_repatriated} objects "
                  f"({fr.repatriated_bytes} bytes) repatriated, "
                  f"downtime {fr.downtime_s:.1f}s, "
                  f"{fr.rediscoveries} rediscoveries")
    return 0 if result.completed else 1


def _fleet_run(source: str, clients: int, surrogates: int,
               heap_mb: float, workers: int, cap: int, policy: str,
               surrogate_heap_mb: float) -> int:
    """``fleet run``: N trace-driven clients against M shared
    surrogates, with admission control, DRR fairness, and eviction."""
    from .config import DeviceProfile
    from .emulator import (
        ColumnarTrace, EmulatorConfig, FleetConfig, FleetEmulator,
        replicate,
    )
    from .errors import ConfigurationError
    from .units import MB

    try:
        trace = _load_trace(source)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.from_trace(trace)
    config = EmulatorConfig(
        client=DeviceProfile("client-dev", cpu_speed=1.0,
                             heap_capacity=int(heap_mb * MB)),
        offload_enabled=True,
    )
    try:
        fleet_config = FleetConfig(
            surrogates=surrogates, admission_cap=cap,
            admission_policy=policy,
            heap_capacity=int(surrogate_heap_mb * MB),
        )
        emulator = FleetEmulator(
            replicate(trace, config, clients=max(clients, 1)),
            fleet_config, workers=workers)
    except ConfigurationError as exc:
        print(f"bad fleet configuration: {exc}", file=sys.stderr)
        return 2
    result = emulator.run()
    print(f"fleet: {len(result.outcomes)} client(s) of "
          f"{trace.app_name!r} on {surrogates} surrogate(s) "
          f"(cap {cap}, policy {policy})")
    print(f"  completed: {result.completed_clients}, "
          f"rejected: {result.rejected_clients}")
    print(f"  completion p50 {result.p50_completion_s:.1f}s, "
          f"p99 {result.p99_completion_s:.1f}s "
          f"(fairness p99/p50 {result.fairness_ratio:.2f})")
    print(f"  admission wait: {result.mean_admission_wait_s:.1f}s mean; "
          f"evictions: {result.total_evictions}, "
          f"rebalances: {result.rebalances}")
    print(f"  drive side: {result.replayed_events} events replayed "
          f"({result.distinct_profiles} distinct profile(s)) on "
          f"{result.workers} worker(s); "
          f"{result.events_per_second / 1e6:.2f}M ev/s aggregate")
    for warning in result.warnings:
        print(f"  note: {warning}")
    print(f"  fingerprint: {result.fingerprint()}")
    return 0 if result.rejected_clients == 0 else 1


def _analyze(app_name: str, json_path, sarif: bool = False) -> int:
    from .analysis import analyze_app

    try:
        report = analyze_app(app_name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if sarif:
        rendered = report.to_sarif_json()
        if json_path is None or json_path == "-":
            print(rendered)
        else:
            with open(json_path, "w") as stream:
                stream.write(rendered + "\n")
            print(f"wrote SARIF analysis of {app_name!r} to {json_path}")
    elif json_path is None:
        print(report.to_text())
    elif json_path == "-":
        print(report.to_json())
    else:
        with open(json_path, "w") as stream:
            stream.write(report.to_json() + "\n")
        print(f"wrote analysis of {app_name!r} to {json_path}")
    return 1 if report.has_errors else 0


def _result_payload(name: str, output: str, elapsed: float) -> dict:
    return {"experiment": name, "elapsed_host_seconds": round(elapsed, 3),
            "report": output}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from the ICDCS 2002 "
                    "AIDE paper, or record/replay workload traces.",
    )
    parser.add_argument(
        "targets", nargs="*",
        help="experiment names (see 'list'), 'all', "
             "'record <app> <path>', 'replay <path>', "
             "'trace convert <in> <out>', 'fleet run [<path|app>]', "
             "or 'analyze <app>'",
    )
    parser.add_argument("--heap-mb", type=float, default=6.0,
                        help="client heap for 'replay' (default 6)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="replay worker processes (default 1; >1 "
                             "shards clients across cores)")
    parser.add_argument("--clients", type=int, default=1, metavar="N",
                        help="emulated clients for 'replay' (default 1; "
                             "each replays the trace independently)")
    parser.add_argument("--format", dest="trace_format", default="auto",
                        choices=("auto", "jsonl", "ctrace", "sarif"),
                        help="in-memory trace representation for "
                             "'replay': columnar (ctrace) uses the "
                             "batched dispatch loop (default: as "
                             "loaded); for 'analyze', 'sarif' renders "
                             "the diagnostics as a SARIF 2.1.0 log "
                             "(to --json PATH, or stdout)")
    parser.add_argument("--surrogates", type=int, default=4, metavar="M",
                        help="surrogate pool size for 'fleet run' "
                             "(default 4)")
    parser.add_argument("--admission-cap", type=int, default=8,
                        metavar="N",
                        help="concurrent clients per surrogate for "
                             "'fleet run' (default 8; 0 = serial under "
                             "the queue policy)")
    parser.add_argument("--admission-policy", default="queue",
                        choices=("queue", "reject"),
                        help="what a full surrogate does with a new "
                             "client (default: queue)")
    parser.add_argument("--surrogate-heap-mb", type=float, default=64.0,
                        metavar="MB",
                        help="shared heap per surrogate for 'fleet run' "
                             "(default 64)")
    parser.add_argument("--json", metavar="PATH", nargs="?", const="-",
                        help="write reports as JSON: to PATH, or to stdout "
                             "when PATH is omitted")
    parser.add_argument("--no-offload", action="store_true",
                        help="disable offloading for 'replay'")
    parser.add_argument("--faults", metavar="SPEC",
                        help="inject faults during 'replay': "
                             "seed=N,loss=R,spike=R:S,partition=S:E,"
                             "crash_at_event=N,crash_at_time=S")
    parser.add_argument("--link-profile", metavar="SPEC",
                        help="time-varying link for 'replay': a named "
                             "profile (e.g. wavelan-wan-roam) or "
                             "step=T:LINK,ramp=T0:T1:FROM:TO[:STEPS],"
                             "link=T:NAME:BPS:LAT,down=T0:T1")
    parser.add_argument("--mobility", default="handoff",
                        choices=("none", "handoff", "repatriate"),
                        help="reaction to a degrading link under "
                             "--link-profile (default: handoff)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    targets = args.targets or ["list"]
    if targets[0] == "record":
        if len(targets) != 3:
            print("usage: python -m repro record <app> <path>",
                  file=sys.stderr)
            return 2
        return _record(targets[1], targets[2])
    if targets[0] == "replay":
        if len(targets) != 2:
            print("usage: python -m repro replay <path|app> [--heap-mb N] "
                  "[--no-offload] [--faults SPEC] [--workers N] "
                  "[--clients N] [--format ctrace] "
                  "[--link-profile SPEC] [--mobility MODE]",
                  file=sys.stderr)
            return 2
        return _replay(targets[1], args.heap_mb, not args.no_offload,
                       args.faults, workers=args.workers,
                       clients=args.clients,
                       trace_format=args.trace_format,
                       link_profile=args.link_profile,
                       mobility=args.mobility)
    if targets[0] == "fleet":
        if len(targets) < 2 or targets[1] != "run" or len(targets) > 3:
            print("usage: python -m repro fleet run [<path|app>] "
                  "[--clients N] [--surrogates M] [--admission-cap N] "
                  "[--admission-policy queue|reject] [--workers N] "
                  "[--heap-mb N] [--surrogate-heap-mb MB]",
                  file=sys.stderr)
            return 2
        source = targets[2] if len(targets) == 3 else "dia"
        return _fleet_run(source, args.clients, args.surrogates,
                          args.heap_mb, args.workers, args.admission_cap,
                          args.admission_policy, args.surrogate_heap_mb)
    if targets[0] == "trace":
        if len(targets) != 4 or targets[1] != "convert":
            print("usage: python -m repro trace convert <in> <out> "
                  "(suffix picks the format: .ctrace = columnar, "
                  "anything else = JSONL, .gz = gzipped)",
                  file=sys.stderr)
            return 2
        return _convert(targets[2], targets[3])
    if targets[0] == "analyze":
        if len(targets) != 2:
            print("usage: python -m repro analyze <app> [--json [PATH]] "
                  "[--format sarif]",
                  file=sys.stderr)
            return 2
        return _analyze(targets[1], args.json,
                        sarif=args.trace_format == "sarif")
    if targets == ["list"]:
        print("available experiments:")
        for name, description in DESCRIPTIONS.items():
            print(f"  {name:8s} {description}")
        print("  all      run everything")
        print("other commands:")
        print("  record <app> <path>   record a workload trace")
        print("  replay <path|app>     replay a recorded trace "
              "(--faults injects failures; --workers/--clients "
              "shard across cores)")
        print("  trace convert <in> <out>  convert a trace between "
              "JSONL and columnar (.ctrace)")
        print("  fleet run [<path|app>]    emulate N clients sharing "
              "M surrogates (--clients/--surrogates; admission "
              "control, fairness, eviction)")
        print("  analyze <app>         static placement analysis "
              "(AIDE-Lint)")
        return 0
    if "all" in targets:
        targets = list(EXPERIMENTS)
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print("run 'python -m repro list' for options", file=sys.stderr)
        return 2
    payloads = []
    for name in targets:
        started = time.perf_counter()
        output = EXPERIMENTS[name]()
        elapsed = time.perf_counter() - started
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n")
        payloads.append(_result_payload(name, output, elapsed))
    if args.json:
        import json

        with open(args.json, "w") as stream:
            json.dump(payloads, stream, indent=2)
        print(f"wrote {len(payloads)} report(s) to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
