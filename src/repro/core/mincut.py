"""Graph partitioning: the modified MINCUT heuristic and Stoer–Wagner.

The paper derives its heuristic from Stoer & Wagner's simple min-cut
algorithm: seed the client partition with every class that cannot be
offloaded (native methods), then repeatedly move the node with the
greatest connectivity to the client partition, recording *every*
intermediate partitioning.  The policy layer then evaluates all of the
candidates and picks the one that best satisfies the policy — which may
not be the global minimum cut, but will, for example, actually free
enough memory.

The classic Stoer–Wagner global minimum cut is also implemented, both as
the ancestry of the heuristic and as an ablation baseline (it can return
a cut that frees almost nothing, which is precisely the paper's argument
for the modification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import PartitioningError
from .graph import ExecutionGraph, edge_key


@dataclass(frozen=True)
class CandidatePartition:
    """One intermediate partitioning produced by the heuristic.

    ``client_nodes`` stay on the device; ``surrogate_nodes`` would be
    offloaded.  The cut statistics are the historical interactions that
    would become remote under this placement.
    """

    client_nodes: FrozenSet[str]
    surrogate_nodes: FrozenSet[str]
    cut_count: int
    cut_bytes: int
    surrogate_memory: int
    surrogate_cpu: float
    client_cpu: float

    @property
    def offloads_anything(self) -> bool:
        return bool(self.surrogate_nodes)


def _seed_nodes(graph: ExecutionGraph, pinned: Iterable[str]) -> Set[str]:
    """Client-partition seed: pinned nodes present in the graph.

    If nothing is pinned (an application with no native classes), seed
    with the most-connected node, mirroring Stoer–Wagner's arbitrary
    start vertex but made deterministic.
    """
    nodes = set(graph.nodes())
    seed = {node for node in pinned if node in nodes}
    if seed:
        return seed
    if not nodes:
        raise PartitioningError("cannot partition an empty execution graph")
    best = max(
        nodes,
        key=lambda n: (graph.connectivity(n, nodes - {n}), n),
    )
    return {best}


def generate_candidates(
    graph: ExecutionGraph, pinned: Iterable[str]
) -> List[CandidatePartition]:
    """Run the modified MINCUT heuristic, returning all candidates.

    Candidates are ordered from the largest offload (everything that is
    not pinned) down to offloading a single node.  The number of
    candidates is strictly smaller than the number of nodes, as the
    paper notes.
    """
    client: Set[str] = _seed_nodes(graph, pinned)
    surrogate: Set[str] = set(graph.nodes()) - client
    if not surrogate:
        return []

    total_memory = graph.total_memory()
    total_cpu = graph.total_cpu()

    # Incrementally maintained cut statistics and per-node connectivity
    # (bytes and counts towards the client partition).
    cut_count, cut_bytes = graph.cut(frozenset(client))
    conn_bytes: Dict[str, int] = {}
    conn_count: Dict[str, int] = {}
    for node in surrogate:
        nbytes = ncount = 0
        for neighbor in graph.neighbors(node):
            if neighbor in client:
                edge = graph.edge(node, neighbor)
                nbytes += edge.bytes
                ncount += edge.count
        conn_bytes[node] = nbytes
        conn_count[node] = ncount

    client_memory = graph.total_memory(client)
    client_cpu = graph.total_cpu(client)

    candidates: List[CandidatePartition] = []

    def record() -> None:
        candidates.append(
            CandidatePartition(
                client_nodes=frozenset(client),
                surrogate_nodes=frozenset(surrogate),
                cut_count=cut_count,
                cut_bytes=cut_bytes,
                surrogate_memory=total_memory - client_memory,
                surrogate_cpu=total_cpu - client_cpu,
                client_cpu=client_cpu,
            )
        )

    record()
    while len(surrogate) > 1:
        # Most tightly coupled to the client partition; deterministic
        # tie-break on (count, node id).
        moved = max(
            surrogate,
            key=lambda n: (conn_bytes[n], conn_count[n], n),
        )
        surrogate.discard(moved)
        client.add(moved)
        client_memory += graph.node(moved).memory_bytes
        client_cpu += graph.node(moved).cpu_seconds
        # The moved node's client-side edges leave the cut; its edges to
        # the remaining surrogate nodes join the cut.
        cut_bytes -= conn_bytes.pop(moved)
        cut_count -= conn_count.pop(moved)
        for neighbor in graph.neighbors(moved):
            if neighbor in surrogate:
                edge = graph.edge(moved, neighbor)
                cut_bytes += edge.bytes
                cut_count += edge.count
                conn_bytes[neighbor] += edge.bytes
                conn_count[neighbor] += edge.count
        record()
    return candidates


def min_bandwidth_candidate(
    candidates: List[CandidatePartition],
) -> Optional[CandidatePartition]:
    """The candidate with the globally smallest cut bytes (no constraints)."""
    if not candidates:
        return None
    return min(candidates, key=lambda c: (c.cut_bytes, c.cut_count))


def stoer_wagner(graph: ExecutionGraph) -> Tuple[int, FrozenSet[str]]:
    """Classic Stoer–Wagner global minimum cut (weight = edge bytes).

    Returns ``(cut_bytes, partition)`` where ``partition`` is one side of
    the minimum cut.  Used as an ablation baseline: the unmodified
    algorithm is free to return a cut that isolates a single node and
    frees almost no memory.
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise PartitioningError("minimum cut requires at least two nodes")

    # Work on a contractible copy of the weights.
    weights: Dict[Tuple[str, str], int] = {
        key: edge.bytes for key, edge in graph.edges()
    }
    groups: Dict[str, Set[str]] = {n: {n} for n in nodes}
    active = set(nodes)

    def weight(a: str, b: str) -> int:
        return weights.get(edge_key(a, b), 0)

    best_cut = None
    best_partition: FrozenSet[str] = frozenset()

    while len(active) > 1:
        # Minimum cut phase (maximum adjacency ordering).
        order = []
        in_a: Set[str] = set()
        conn: Dict[str, int] = {n: 0 for n in active}
        remaining = set(active)
        while remaining:
            nxt = max(remaining, key=lambda n: (conn[n], n))
            remaining.discard(nxt)
            order.append(nxt)
            in_a.add(nxt)
            for other in remaining:
                other_weight = weight(nxt, other)
                if other_weight:
                    conn[other] += other_weight
        last = order[-1]
        cut_of_phase = conn[last]
        if best_cut is None or cut_of_phase < best_cut:
            best_cut = cut_of_phase
            best_partition = frozenset(groups[last])
        # Merge the last two vertices of the ordering.
        if len(order) >= 2:
            merged_into = order[-2]
            groups[merged_into] |= groups[last]
            for other in list(active):
                if other in (last, merged_into):
                    continue
                joining_weight = weight(last, other)
                if joining_weight:
                    key = edge_key(merged_into, other)
                    weights[key] = weights.get(key, 0) + joining_weight
            active.discard(last)
    assert best_cut is not None
    return best_cut, best_partition
