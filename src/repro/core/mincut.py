"""Graph partitioning: the modified MINCUT heuristic and Stoer–Wagner.

The paper derives its heuristic from Stoer & Wagner's simple min-cut
algorithm: seed the client partition with every class that cannot be
offloaded (native methods), then repeatedly move the node with the
greatest connectivity to the client partition, recording *every*
intermediate partitioning.  The policy layer then evaluates all of the
candidates and picks the one that best satisfies the policy — which may
not be the global minimum cut, but will, for example, actually free
enough memory.

The classic Stoer–Wagner global minimum cut is also implemented, both as
the ancestry of the heuristic and as an ablation baseline (it can return
a cut that frees almost nothing, which is precisely the paper's argument
for the modification).

Both algorithms select their next vertex through a lazy-deletion heap
rather than a linear scan, so one candidate chain costs
O((V + E) log V) instead of O(V^2 + E); connectivities only ever grow
while a vertex is selectable, so the freshest heap entry for a vertex is
always the largest and stale entries can simply be skipped on pop.

This module is the *reference* implementation: ``Partitioner`` runs the
flat-index CSR rewrite of the same heuristic (``core.flatgraph``) by
default and keeps this string-keyed kernel behind ``use_flat=False``.
The two must stay bit-identical — same candidate chains, statistics,
and float accumulation order — which
``tests/core/test_flatgraph_parity.py`` enforces on randomized graphs;
behavioural changes here must be mirrored there.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import PartitioningError
from .graph import ExecutionGraph, GraphDelta


class _MaxOrderStr:
    """Reverses string ordering so heapq's min-heap pops the max id.

    The heuristic breaks connectivity ties towards the *largest* node
    id (the historical ``max()`` scan compared ``(bytes, count, node)``
    tuples); wrapping the id keeps that exact tie-break under heapq.
    """

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __lt__(self, other: "_MaxOrderStr") -> bool:
        return self.value > other.value


class _MoveLog:
    """Shared move history behind one chain of lazy candidates.

    ``seed`` is the initial client partition; ``order`` lists every
    initially-surrogate node in the order it was moved to the client,
    with the never-moved remainder appended at the end.  Candidate ``i``
    of the chain is then ``client = seed | order[:i]``,
    ``surrogate = order[i:]`` — O(V) storage for the whole chain instead
    of O(V^2) worth of per-candidate frozensets.
    """

    __slots__ = ("seed", "order")

    def __init__(self, seed: FrozenSet[str]) -> None:
        self.seed = seed
        self.order: List[str] = []


class CandidatePartition:
    """One intermediate partitioning produced by the heuristic.

    ``client_nodes`` stay on the device; ``surrogate_nodes`` would be
    offloaded.  The cut statistics are the historical interactions that
    would become remote under this placement.

    Node sets coming out of :func:`generate_candidates` are
    materialised lazily on first access (most candidates are only ever
    judged by their scalar cut statistics); explicitly constructed
    instances behave like the plain record they always were.
    """

    __slots__ = (
        "cut_count",
        "cut_bytes",
        "surrogate_memory",
        "surrogate_cpu",
        "client_cpu",
        "_client_nodes",
        "_surrogate_nodes",
        "_log",
        "_moves_applied",
    )

    def __init__(
        self,
        client_nodes: Iterable[str],
        surrogate_nodes: Iterable[str],
        cut_count: int,
        cut_bytes: int,
        surrogate_memory: int,
        surrogate_cpu: float,
        client_cpu: float,
    ) -> None:
        self._client_nodes: Optional[FrozenSet[str]] = frozenset(client_nodes)
        self._surrogate_nodes: Optional[FrozenSet[str]] = frozenset(
            surrogate_nodes
        )
        self._log: Optional[_MoveLog] = None
        self._moves_applied = 0
        self.cut_count = cut_count
        self.cut_bytes = cut_bytes
        self.surrogate_memory = surrogate_memory
        self.surrogate_cpu = surrogate_cpu
        self.client_cpu = client_cpu

    @classmethod
    def _deferred(
        cls,
        log: _MoveLog,
        moves_applied: int,
        cut_count: int,
        cut_bytes: int,
        surrogate_memory: int,
        surrogate_cpu: float,
        client_cpu: float,
    ) -> "CandidatePartition":
        self = cls.__new__(cls)
        self._client_nodes = None
        self._surrogate_nodes = None
        self._log = log
        self._moves_applied = moves_applied
        self.cut_count = cut_count
        self.cut_bytes = cut_bytes
        self.surrogate_memory = surrogate_memory
        self.surrogate_cpu = surrogate_cpu
        self.client_cpu = client_cpu
        return self

    @property
    def client_nodes(self) -> FrozenSet[str]:
        nodes = self._client_nodes
        if nodes is None:
            log = self._log
            nodes = log.seed.union(log.order[: self._moves_applied])
            self._client_nodes = nodes
        return nodes

    @property
    def surrogate_nodes(self) -> FrozenSet[str]:
        nodes = self._surrogate_nodes
        if nodes is None:
            nodes = frozenset(self._log.order[self._moves_applied:])
            self._surrogate_nodes = nodes
        return nodes

    @property
    def offloads_anything(self) -> bool:
        if self._surrogate_nodes is not None:
            return bool(self._surrogate_nodes)
        return len(self._log.order) > self._moves_applied

    def _fields(self) -> tuple:
        return (
            self.client_nodes,
            self.surrogate_nodes,
            self.cut_count,
            self.cut_bytes,
            self.surrogate_memory,
            self.surrogate_cpu,
            self.client_cpu,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CandidatePartition):
            return NotImplemented
        return self._fields() == other._fields()

    def __hash__(self) -> int:
        return hash(self._fields())

    def __repr__(self) -> str:
        return (
            "CandidatePartition("
            f"client_nodes={set(self.client_nodes)!r}, "
            f"surrogate_nodes={set(self.surrogate_nodes)!r}, "
            f"cut_count={self.cut_count}, cut_bytes={self.cut_bytes}, "
            f"surrogate_memory={self.surrogate_memory}, "
            f"surrogate_cpu={self.surrogate_cpu}, "
            f"client_cpu={self.client_cpu})"
        )


class WarmStartState:
    """Persisted outcome of one candidate-generation run.

    A warm start replays the previous run's move order against the
    mutated graph: candidate statistics are patched through difference
    arrays built from the dirty edges/nodes alone, and the greedy
    selection order is *re-validated* — at every step the previously
    selected node must still dominate every node whose connectivity
    could have changed.  Edge weights only grow through
    ``record_interaction``, so nodes untouched by the delta keep their
    old connectivity and cannot newly overtake a selection; only the
    perturbed nodes (endpoints of dirty edges) need checking.  If any
    check fails — the move order would differ, the node set changed,
    the seed changed, or an edge shrank — the warm path returns nothing
    and the caller falls back to a full cold run.  A successful warm
    run therefore emits *exactly* the candidate chain the cold run
    would (up to float addition order in the CPU-seconds fields).
    """

    __slots__ = (
        "ready",
        "last_run_warm",
        "seed",
        "order",
        "pos",
        "node_count",
        "sel_bytes",
        "sel_count",
        "cut_bytes",
        "cut_count",
        "surrogate_memory",
        "surrogate_cpu",
        "client_cpu",
        "edge_values",
        "node_values",
    )

    def __init__(self) -> None:
        self.ready = False
        #: True when the most recent generate_candidates call with this
        #: state was served by the warm path (for session statistics).
        self.last_run_warm = False
        self.seed: FrozenSet[str] = frozenset()
        #: Move order; ``order[j]`` joined the client partition at
        #: candidate index ``j + 1`` (the final entry never moved).
        self.order: List[str] = []
        #: node -> candidate index from which it is on the client side
        #: (0 for seed members, ``len(order)`` for the never-moved tail).
        self.pos: Dict[str, int] = {}
        self.node_count = 0
        #: Connectivity (bytes, count) of the selected node at each of
        #: the ``len(order) - 1`` selection steps, for re-validation.
        self.sel_bytes: List[int] = []
        self.sel_count: List[int] = []
        # Per-candidate statistics arrays (length == len(order)).
        self.cut_bytes: List[int] = []
        self.cut_count: List[int] = []
        self.surrogate_memory: List[int] = []
        self.surrogate_cpu: List[float] = []
        self.client_cpu: List[float] = []
        #: Last-seen raw values, for computing deltas of dirty entries.
        self.edge_values: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self.node_values: Dict[str, Tuple[int, float]] = {}


def _seed_nodes(graph: ExecutionGraph, pinned: Iterable[str]) -> Set[str]:
    """Client-partition seed: pinned nodes present in the graph.

    If nothing is pinned (an application with no native classes), seed
    with the most-connected node, mirroring Stoer–Wagner's arbitrary
    start vertex but made deterministic.
    """
    nodes = set(graph.nodes())
    seed = {node for node in pinned if node in nodes}
    if seed:
        return seed
    if not nodes:
        raise PartitioningError("cannot partition an empty execution graph")
    best = max(
        nodes,
        key=lambda n: (graph.connectivity(n, nodes - {n}), n),
    )
    return {best}


def generate_candidates(
    graph: ExecutionGraph,
    pinned: Iterable[str],
    warm: Optional[WarmStartState] = None,
    delta: Optional[GraphDelta] = None,
) -> List[CandidatePartition]:
    """Run the modified MINCUT heuristic, returning all candidates.

    Candidates are ordered from the largest offload (everything that is
    not pinned) down to offloading a single node.  The number of
    candidates is strictly smaller than the number of nodes, as the
    paper notes.

    The most-connected surrogate node is drawn from a lazy-deletion
    heap keyed on ``(conn_bytes, conn_count, node)``: connectivity to
    the client only grows, so each relaxation pushes a fresh entry and
    pops discard entries that no longer match the live connectivity.

    With ``warm`` (a :class:`WarmStartState`) the run records enough of
    its internals to warm-start the next call; passing the previous
    call's ``warm`` together with the graph ``delta`` since then
    attempts the incremental path first (see :class:`WarmStartState`)
    and silently falls back to the cold run when the delta invalidates
    the previous move order.
    """
    pinned = list(pinned)
    if warm is not None:
        warm.last_run_warm = False
        if delta is not None and warm.ready:
            candidates = _warm_generate(graph, pinned, warm, delta)
            if candidates is not None:
                warm.last_run_warm = True
                return candidates
    client: Set[str] = _seed_nodes(graph, pinned)
    surrogate: Set[str] = set(graph.nodes()) - client
    if not surrogate:
        if warm is not None:
            warm.ready = False
        return []

    total_memory = graph.total_memory()
    total_cpu = graph.total_cpu()

    # Incrementally maintained cut statistics and per-node connectivity
    # (bytes and counts towards the client partition).
    cut_count, cut_bytes = graph.cut(frozenset(client))
    conn_bytes: Dict[str, int] = {}
    conn_count: Dict[str, int] = {}
    for node in surrogate:
        nbytes = ncount = 0
        for neighbor, edge in graph.adjacent_edges(node):
            if neighbor in client:
                nbytes += edge.bytes
                ncount += edge.count
        conn_bytes[node] = nbytes
        conn_count[node] = ncount

    heap: List[Tuple[int, int, _MaxOrderStr]] = [
        (-conn_bytes[node], -conn_count[node], _MaxOrderStr(node))
        for node in surrogate
    ]
    heapq.heapify(heap)

    client_memory = graph.total_memory(client)
    client_cpu = graph.total_cpu(client)

    log = _MoveLog(frozenset(client))
    candidates: List[CandidatePartition] = []
    state = warm if warm is not None else None
    if state is not None:
        state.ready = False
        state.seed = log.seed
        state.order = log.order
        state.sel_bytes = []
        state.sel_count = []
        state.cut_bytes = []
        state.cut_count = []
        state.surrogate_memory = []
        state.surrogate_cpu = []
        state.client_cpu = []

    def record() -> None:
        candidates.append(
            CandidatePartition._deferred(
                log=log,
                moves_applied=len(log.order),
                cut_count=cut_count,
                cut_bytes=cut_bytes,
                surrogate_memory=total_memory - client_memory,
                surrogate_cpu=total_cpu - client_cpu,
                client_cpu=client_cpu,
            )
        )
        if state is not None:
            state.cut_bytes.append(cut_bytes)
            state.cut_count.append(cut_count)
            state.surrogate_memory.append(total_memory - client_memory)
            state.surrogate_cpu.append(total_cpu - client_cpu)
            state.client_cpu.append(client_cpu)

    record()
    remaining = len(surrogate)
    while remaining > 1:
        # Most tightly coupled to the client partition; deterministic
        # tie-break on (count, node id).  Stale heap entries (pushed
        # before a later relaxation raised the node's connectivity, or
        # for already-moved nodes) are skipped.
        while True:
            neg_bytes, neg_count, wrapped = heapq.heappop(heap)
            moved = wrapped.value
            current = conn_bytes.get(moved)
            if (
                current is not None
                and current == -neg_bytes
                and conn_count[moved] == -neg_count
            ):
                break
        remaining -= 1
        if state is not None:
            state.sel_bytes.append(-neg_bytes)
            state.sel_count.append(-neg_count)
        stats = graph.node(moved)
        client_memory += stats.memory_bytes
        client_cpu += stats.cpu_seconds
        # The moved node's client-side edges leave the cut; its edges to
        # the remaining surrogate nodes join the cut.
        cut_bytes -= conn_bytes.pop(moved)
        cut_count -= conn_count.pop(moved)
        for neighbor, edge in graph.adjacent_edges(moved):
            neighbor_bytes = conn_bytes.get(neighbor)
            if neighbor_bytes is None:
                continue
            cut_bytes += edge.bytes
            cut_count += edge.count
            neighbor_bytes += edge.bytes
            neighbor_count = conn_count[neighbor] + edge.count
            conn_bytes[neighbor] = neighbor_bytes
            conn_count[neighbor] = neighbor_count
            heapq.heappush(
                heap,
                (-neighbor_bytes, -neighbor_count, _MaxOrderStr(neighbor)),
            )
        log.order.append(moved)
        record()
    # The never-moved remainder closes the move order so lazy candidates
    # can slice their surrogate side out of it.
    log.order.extend(conn_bytes)
    if state is not None:
        state.pos = {node: 0 for node in log.seed}
        for index, node in enumerate(log.order):
            state.pos[node] = index + 1
        state.node_count = graph.node_count
        state.edge_values = {
            key: (edge.bytes, edge.count) for key, edge in graph.edges()
        }
        state.node_values = {
            node: (graph.node(node).memory_bytes, graph.node(node).cpu_seconds)
            for node in graph.nodes()
        }
        state.ready = len(log.order) >= 2
    return candidates


def _warm_generate(
    graph: ExecutionGraph,
    pinned: List[str],
    warm: WarmStartState,
    delta: GraphDelta,
) -> Optional[List[CandidatePartition]]:
    """Incremental candidate generation; ``None`` means fall back cold.

    Works in three phases: (1) compute per-edge/per-node deltas against
    the previous run's recorded values, bailing out on anything the
    incremental model cannot express (new nodes, shrinking edges, a
    different seed); (2) re-validate the previous greedy move order,
    tracking the exact new connectivity timelines of the perturbed
    nodes only; (3) patch the per-candidate statistics through
    difference arrays over the move positions.  Total cost is
    O(D log D + k) for a dirty region of size D and k candidates.
    """
    k = len(warm.order)
    if k < 2 or graph.node_count != warm.node_count:
        return None
    seed = {node for node in pinned if graph.has_node(node)}
    if not seed or frozenset(seed) != warm.seed:
        return None
    pos = warm.pos

    # -- phase 1: deltas ---------------------------------------------------------
    edge_deltas: List[Tuple[str, str, int, int]] = []
    for key in delta.edges:
        a, b = key
        if a not in pos or b not in pos:
            return None
        edge = graph.edge(a, b)
        if edge is None:
            return None
        old_bytes, old_count = warm.edge_values.get(key, (0, 0))
        dbytes = edge.bytes - old_bytes
        dcount = edge.count - old_count
        if dbytes < 0 or dcount < 0:
            # A shrinking edge breaks the only-grows argument that lets
            # unperturbed nodes keep their recorded connectivities.
            return None
        if dbytes or dcount:
            edge_deltas.append((a, b, dbytes, dcount))
    node_deltas: List[Tuple[str, int, float]] = []
    for node in delta.nodes:
        if node not in pos:
            return None
        stats = graph.node(node)
        old_memory, old_cpu = warm.node_values.get(node, (0, 0.0))
        dmemory = stats.memory_bytes - old_memory
        dcpu = stats.cpu_seconds - old_cpu
        if dmemory or dcpu:
            node_deltas.append((node, dmemory, dcpu))

    # -- phase 2: re-validate the move order -------------------------------------
    # Perturbed nodes are the non-seed endpoints of changed edges; all
    # other nodes keep exactly their recorded connectivity at every
    # step, and since edges only grew they cannot newly overtake the
    # recorded selections.  For each perturbed node rebuild its exact
    # connectivity timeline from the new graph: a base value against
    # the seed plus one event per neighbour that joins the client side
    # before the perturbed node itself would move.
    perturbed: Set[str] = set()
    for a, b, _, _ in edge_deltas:
        if pos[a] > 0:
            perturbed.add(a)
        if pos[b] > 0:
            perturbed.add(b)
    cur_bytes: Dict[str, int] = {}
    cur_count: Dict[str, int] = {}
    pending: Dict[int, List[Tuple[str, int, int]]] = {}
    for node in perturbed:
        node_pos = pos[node]
        base_bytes = base_count = 0
        for neighbor, edge in graph.adjacent_edges(node):
            neighbor_pos = pos.get(neighbor)
            if neighbor_pos is None:
                return None
            if neighbor_pos == 0:
                base_bytes += edge.bytes
                base_count += edge.count
            elif neighbor_pos < node_pos:
                pending.setdefault(neighbor_pos, []).append(
                    (node, edge.bytes, edge.count)
                )
        cur_bytes[node] = base_bytes
        cur_count[node] = base_count
    heap: List[Tuple[int, int, _MaxOrderStr]] = [
        (-cur_bytes[node], -cur_count[node], _MaxOrderStr(node))
        for node in perturbed
    ]
    heapq.heapify(heap)

    new_sel_bytes = list(warm.sel_bytes)
    new_sel_count = list(warm.sel_count)
    for step in range(k - 1):
        if step:
            for node, ebytes, ecount in pending.pop(step, ()):
                cur_bytes[node] += ebytes
                cur_count[node] += ecount
                heapq.heappush(
                    heap,
                    (-cur_bytes[node], -cur_count[node], _MaxOrderStr(node)),
                )
        moved = warm.order[step]
        if moved in perturbed:
            moved_bytes = cur_bytes[moved]
            moved_count = cur_count[moved]
            new_sel_bytes[step] = moved_bytes
            new_sel_count[step] = moved_count
        else:
            moved_bytes = warm.sel_bytes[step]
            moved_count = warm.sel_count[step]
        # Drop heap entries that are stale, already on the client side,
        # or the selectee itself (never a competitor again), then check
        # whether the best remaining perturbed node would now win.
        while heap:
            neg_bytes, neg_count, wrapped = heap[0]
            node = wrapped.value
            if (
                pos[node] <= step
                or node == moved
                or cur_bytes[node] != -neg_bytes
                or cur_count[node] != -neg_count
            ):
                heapq.heappop(heap)
                continue
            if (-neg_bytes, -neg_count, node) > (
                moved_bytes, moved_count, moved
            ):
                return None
            break

    # -- phase 3: patch candidate statistics -------------------------------------
    diff_cut_bytes = [0] * (k + 1)
    diff_cut_count = [0] * (k + 1)
    for a, b, dbytes, dcount in edge_deltas:
        low = pos[a]
        high = pos[b]
        if low > high:
            low, high = high, low
        high = min(high, k)
        if low < high:
            diff_cut_bytes[low] += dbytes
            diff_cut_bytes[high] -= dbytes
            diff_cut_count[low] += dcount
            diff_cut_count[high] -= dcount
    diff_memory = [0] * (k + 1)
    diff_surrogate_cpu = [0.0] * (k + 1)
    diff_client_cpu = [0.0] * (k + 1)
    for node, dmemory, dcpu in node_deltas:
        node_pos = pos[node]
        surrogate_until = min(node_pos, k)
        if surrogate_until > 0:
            diff_memory[0] += dmemory
            diff_memory[surrogate_until] -= dmemory
            diff_surrogate_cpu[0] += dcpu
            diff_surrogate_cpu[surrogate_until] -= dcpu
        if node_pos < k:
            diff_client_cpu[node_pos] += dcpu
            diff_client_cpu[k] -= dcpu

    cut_bytes = list(warm.cut_bytes)
    cut_count = list(warm.cut_count)
    surrogate_memory = list(warm.surrogate_memory)
    surrogate_cpu = list(warm.surrogate_cpu)
    client_cpu = list(warm.client_cpu)
    running_cb = running_cc = running_mem = 0
    running_scpu = running_ccpu = 0.0
    for index in range(k):
        running_cb += diff_cut_bytes[index]
        running_cc += diff_cut_count[index]
        running_mem += diff_memory[index]
        running_scpu += diff_surrogate_cpu[index]
        running_ccpu += diff_client_cpu[index]
        if running_cb:
            cut_bytes[index] += running_cb
        if running_cc:
            cut_count[index] += running_cc
        if running_mem:
            surrogate_memory[index] += running_mem
        if running_scpu:
            surrogate_cpu[index] += running_scpu
        if running_ccpu:
            client_cpu[index] += running_ccpu

    log = _MoveLog(warm.seed)
    log.order = warm.order
    candidates = [
        CandidatePartition._deferred(
            log=log,
            moves_applied=index,
            cut_count=cut_count[index],
            cut_bytes=cut_bytes[index],
            surrogate_memory=surrogate_memory[index],
            surrogate_cpu=surrogate_cpu[index],
            client_cpu=client_cpu[index],
        )
        for index in range(k)
    ]

    # Commit the patched state so the next epoch warm-starts from here.
    warm.sel_bytes = new_sel_bytes
    warm.sel_count = new_sel_count
    warm.cut_bytes = cut_bytes
    warm.cut_count = cut_count
    warm.surrogate_memory = surrogate_memory
    warm.surrogate_cpu = surrogate_cpu
    warm.client_cpu = client_cpu
    for a, b, _, _ in edge_deltas:
        edge = graph.edge(a, b)
        warm.edge_values[(a, b) if a <= b else (b, a)] = (
            edge.bytes, edge.count
        )
    for node, _, _ in node_deltas:
        stats = graph.node(node)
        warm.node_values[node] = (stats.memory_bytes, stats.cpu_seconds)
    return candidates


def min_bandwidth_candidate(
    candidates: List[CandidatePartition],
) -> Optional[CandidatePartition]:
    """The candidate with the globally smallest cut bytes (no constraints)."""
    if not candidates:
        return None
    return min(candidates, key=lambda c: (c.cut_bytes, c.cut_count))


def stoer_wagner(graph: ExecutionGraph) -> Tuple[int, FrozenSet[str]]:
    """Classic Stoer–Wagner global minimum cut (weight = edge bytes).

    Returns ``(cut_bytes, partition)`` where ``partition`` is one side of
    the minimum cut.  Used as an ablation baseline: the unmodified
    algorithm is free to return a cut that isolates a single node and
    frees almost no memory.

    Contractions are carried out on per-vertex adjacency maps, so each
    maximum-adjacency phase walks only real edges (heap-ordered) and a
    merge touches only the merged vertex's neighbors instead of every
    active vertex pair.
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise PartitioningError("minimum cut requires at least two nodes")

    # Contractible per-vertex weight maps (vertex -> neighbor -> bytes).
    adjacency: Dict[str, Dict[str, int]] = {n: {} for n in nodes}
    for (a, b), edge in graph.edges():
        adjacency[a][b] = edge.bytes
        adjacency[b][a] = edge.bytes

    groups: Dict[str, Set[str]] = {n: {n} for n in nodes}
    active = set(nodes)

    best_cut = None
    best_partition: FrozenSet[str] = frozenset()

    while len(active) > 1:
        # Minimum cut phase (maximum adjacency ordering), drawn from a
        # lazy-deletion heap with the historical (conn, node) tie-break.
        order = []
        conn: Dict[str, int] = {n: 0 for n in active}
        remaining = set(active)
        heap = [(0, _MaxOrderStr(n)) for n in active]
        heapq.heapify(heap)
        while remaining:
            while True:
                neg_conn, wrapped = heapq.heappop(heap)
                nxt = wrapped.value
                if nxt in remaining and conn[nxt] == -neg_conn:
                    break
            remaining.discard(nxt)
            order.append(nxt)
            for other, other_weight in adjacency[nxt].items():
                if other_weight and other in remaining:
                    connected = conn[other] + other_weight
                    conn[other] = connected
                    heapq.heappush(heap, (-connected, _MaxOrderStr(other)))
        last = order[-1]
        cut_of_phase = conn[last]
        if best_cut is None or cut_of_phase < best_cut:
            best_cut = cut_of_phase
            best_partition = frozenset(groups[last])
        # Merge the last two vertices of the ordering.
        merged_into = order[-2]
        groups[merged_into] |= groups[last]
        merged_adjacency = adjacency[merged_into]
        merged_adjacency.pop(last, None)
        for other, joining_weight in adjacency.pop(last).items():
            if other == merged_into:
                continue
            adjacency[other].pop(last, None)
            if joining_weight:
                combined = merged_adjacency.get(other, 0) + joining_weight
                merged_adjacency[other] = combined
                adjacency[other][merged_into] = combined
        active.discard(last)
    assert best_cut is not None
    return best_cut, best_partition
