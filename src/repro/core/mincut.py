"""Graph partitioning: the modified MINCUT heuristic and Stoer–Wagner.

The paper derives its heuristic from Stoer & Wagner's simple min-cut
algorithm: seed the client partition with every class that cannot be
offloaded (native methods), then repeatedly move the node with the
greatest connectivity to the client partition, recording *every*
intermediate partitioning.  The policy layer then evaluates all of the
candidates and picks the one that best satisfies the policy — which may
not be the global minimum cut, but will, for example, actually free
enough memory.

The classic Stoer–Wagner global minimum cut is also implemented, both as
the ancestry of the heuristic and as an ablation baseline (it can return
a cut that frees almost nothing, which is precisely the paper's argument
for the modification).

Both algorithms select their next vertex through a lazy-deletion heap
rather than a linear scan, so one candidate chain costs
O((V + E) log V) instead of O(V^2 + E); connectivities only ever grow
while a vertex is selectable, so the freshest heap entry for a vertex is
always the largest and stale entries can simply be skipped on pop.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import PartitioningError
from .graph import ExecutionGraph


class _MaxOrderStr:
    """Reverses string ordering so heapq's min-heap pops the max id.

    The heuristic breaks connectivity ties towards the *largest* node
    id (the historical ``max()`` scan compared ``(bytes, count, node)``
    tuples); wrapping the id keeps that exact tie-break under heapq.
    """

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __lt__(self, other: "_MaxOrderStr") -> bool:
        return self.value > other.value


class _MoveLog:
    """Shared move history behind one chain of lazy candidates.

    ``seed`` is the initial client partition; ``order`` lists every
    initially-surrogate node in the order it was moved to the client,
    with the never-moved remainder appended at the end.  Candidate ``i``
    of the chain is then ``client = seed | order[:i]``,
    ``surrogate = order[i:]`` — O(V) storage for the whole chain instead
    of O(V^2) worth of per-candidate frozensets.
    """

    __slots__ = ("seed", "order")

    def __init__(self, seed: FrozenSet[str]) -> None:
        self.seed = seed
        self.order: List[str] = []


class CandidatePartition:
    """One intermediate partitioning produced by the heuristic.

    ``client_nodes`` stay on the device; ``surrogate_nodes`` would be
    offloaded.  The cut statistics are the historical interactions that
    would become remote under this placement.

    Node sets coming out of :func:`generate_candidates` are
    materialised lazily on first access (most candidates are only ever
    judged by their scalar cut statistics); explicitly constructed
    instances behave like the plain record they always were.
    """

    __slots__ = (
        "cut_count",
        "cut_bytes",
        "surrogate_memory",
        "surrogate_cpu",
        "client_cpu",
        "_client_nodes",
        "_surrogate_nodes",
        "_log",
        "_moves_applied",
    )

    def __init__(
        self,
        client_nodes: Iterable[str],
        surrogate_nodes: Iterable[str],
        cut_count: int,
        cut_bytes: int,
        surrogate_memory: int,
        surrogate_cpu: float,
        client_cpu: float,
    ) -> None:
        self._client_nodes: Optional[FrozenSet[str]] = frozenset(client_nodes)
        self._surrogate_nodes: Optional[FrozenSet[str]] = frozenset(
            surrogate_nodes
        )
        self._log: Optional[_MoveLog] = None
        self._moves_applied = 0
        self.cut_count = cut_count
        self.cut_bytes = cut_bytes
        self.surrogate_memory = surrogate_memory
        self.surrogate_cpu = surrogate_cpu
        self.client_cpu = client_cpu

    @classmethod
    def _deferred(
        cls,
        log: _MoveLog,
        moves_applied: int,
        cut_count: int,
        cut_bytes: int,
        surrogate_memory: int,
        surrogate_cpu: float,
        client_cpu: float,
    ) -> "CandidatePartition":
        self = cls.__new__(cls)
        self._client_nodes = None
        self._surrogate_nodes = None
        self._log = log
        self._moves_applied = moves_applied
        self.cut_count = cut_count
        self.cut_bytes = cut_bytes
        self.surrogate_memory = surrogate_memory
        self.surrogate_cpu = surrogate_cpu
        self.client_cpu = client_cpu
        return self

    @property
    def client_nodes(self) -> FrozenSet[str]:
        nodes = self._client_nodes
        if nodes is None:
            log = self._log
            nodes = log.seed.union(log.order[: self._moves_applied])
            self._client_nodes = nodes
        return nodes

    @property
    def surrogate_nodes(self) -> FrozenSet[str]:
        nodes = self._surrogate_nodes
        if nodes is None:
            nodes = frozenset(self._log.order[self._moves_applied:])
            self._surrogate_nodes = nodes
        return nodes

    @property
    def offloads_anything(self) -> bool:
        if self._surrogate_nodes is not None:
            return bool(self._surrogate_nodes)
        return len(self._log.order) > self._moves_applied

    def _fields(self) -> tuple:
        return (
            self.client_nodes,
            self.surrogate_nodes,
            self.cut_count,
            self.cut_bytes,
            self.surrogate_memory,
            self.surrogate_cpu,
            self.client_cpu,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CandidatePartition):
            return NotImplemented
        return self._fields() == other._fields()

    def __hash__(self) -> int:
        return hash(self._fields())

    def __repr__(self) -> str:
        return (
            "CandidatePartition("
            f"client_nodes={set(self.client_nodes)!r}, "
            f"surrogate_nodes={set(self.surrogate_nodes)!r}, "
            f"cut_count={self.cut_count}, cut_bytes={self.cut_bytes}, "
            f"surrogate_memory={self.surrogate_memory}, "
            f"surrogate_cpu={self.surrogate_cpu}, "
            f"client_cpu={self.client_cpu})"
        )


def _seed_nodes(graph: ExecutionGraph, pinned: Iterable[str]) -> Set[str]:
    """Client-partition seed: pinned nodes present in the graph.

    If nothing is pinned (an application with no native classes), seed
    with the most-connected node, mirroring Stoer–Wagner's arbitrary
    start vertex but made deterministic.
    """
    nodes = set(graph.nodes())
    seed = {node for node in pinned if node in nodes}
    if seed:
        return seed
    if not nodes:
        raise PartitioningError("cannot partition an empty execution graph")
    best = max(
        nodes,
        key=lambda n: (graph.connectivity(n, nodes - {n}), n),
    )
    return {best}


def generate_candidates(
    graph: ExecutionGraph, pinned: Iterable[str]
) -> List[CandidatePartition]:
    """Run the modified MINCUT heuristic, returning all candidates.

    Candidates are ordered from the largest offload (everything that is
    not pinned) down to offloading a single node.  The number of
    candidates is strictly smaller than the number of nodes, as the
    paper notes.

    The most-connected surrogate node is drawn from a lazy-deletion
    heap keyed on ``(conn_bytes, conn_count, node)``: connectivity to
    the client only grows, so each relaxation pushes a fresh entry and
    pops discard entries that no longer match the live connectivity.
    """
    client: Set[str] = _seed_nodes(graph, pinned)
    surrogate: Set[str] = set(graph.nodes()) - client
    if not surrogate:
        return []

    total_memory = graph.total_memory()
    total_cpu = graph.total_cpu()

    # Incrementally maintained cut statistics and per-node connectivity
    # (bytes and counts towards the client partition).
    cut_count, cut_bytes = graph.cut(frozenset(client))
    conn_bytes: Dict[str, int] = {}
    conn_count: Dict[str, int] = {}
    for node in surrogate:
        nbytes = ncount = 0
        for neighbor, edge in graph.adjacent_edges(node):
            if neighbor in client:
                nbytes += edge.bytes
                ncount += edge.count
        conn_bytes[node] = nbytes
        conn_count[node] = ncount

    heap: List[Tuple[int, int, _MaxOrderStr]] = [
        (-conn_bytes[node], -conn_count[node], _MaxOrderStr(node))
        for node in surrogate
    ]
    heapq.heapify(heap)

    client_memory = graph.total_memory(client)
    client_cpu = graph.total_cpu(client)

    log = _MoveLog(frozenset(client))
    candidates: List[CandidatePartition] = []

    def record() -> None:
        candidates.append(
            CandidatePartition._deferred(
                log=log,
                moves_applied=len(log.order),
                cut_count=cut_count,
                cut_bytes=cut_bytes,
                surrogate_memory=total_memory - client_memory,
                surrogate_cpu=total_cpu - client_cpu,
                client_cpu=client_cpu,
            )
        )

    record()
    remaining = len(surrogate)
    while remaining > 1:
        # Most tightly coupled to the client partition; deterministic
        # tie-break on (count, node id).  Stale heap entries (pushed
        # before a later relaxation raised the node's connectivity, or
        # for already-moved nodes) are skipped.
        while True:
            neg_bytes, neg_count, wrapped = heapq.heappop(heap)
            moved = wrapped.value
            current = conn_bytes.get(moved)
            if (
                current is not None
                and current == -neg_bytes
                and conn_count[moved] == -neg_count
            ):
                break
        remaining -= 1
        stats = graph.node(moved)
        client_memory += stats.memory_bytes
        client_cpu += stats.cpu_seconds
        # The moved node's client-side edges leave the cut; its edges to
        # the remaining surrogate nodes join the cut.
        cut_bytes -= conn_bytes.pop(moved)
        cut_count -= conn_count.pop(moved)
        for neighbor, edge in graph.adjacent_edges(moved):
            neighbor_bytes = conn_bytes.get(neighbor)
            if neighbor_bytes is None:
                continue
            cut_bytes += edge.bytes
            cut_count += edge.count
            neighbor_bytes += edge.bytes
            neighbor_count = conn_count[neighbor] + edge.count
            conn_bytes[neighbor] = neighbor_bytes
            conn_count[neighbor] = neighbor_count
            heapq.heappush(
                heap,
                (-neighbor_bytes, -neighbor_count, _MaxOrderStr(neighbor)),
            )
        log.order.append(moved)
        record()
    # The never-moved remainder closes the move order so lazy candidates
    # can slice their surrogate side out of it.
    log.order.extend(conn_bytes)
    return candidates


def min_bandwidth_candidate(
    candidates: List[CandidatePartition],
) -> Optional[CandidatePartition]:
    """The candidate with the globally smallest cut bytes (no constraints)."""
    if not candidates:
        return None
    return min(candidates, key=lambda c: (c.cut_bytes, c.cut_count))


def stoer_wagner(graph: ExecutionGraph) -> Tuple[int, FrozenSet[str]]:
    """Classic Stoer–Wagner global minimum cut (weight = edge bytes).

    Returns ``(cut_bytes, partition)`` where ``partition`` is one side of
    the minimum cut.  Used as an ablation baseline: the unmodified
    algorithm is free to return a cut that isolates a single node and
    frees almost no memory.

    Contractions are carried out on per-vertex adjacency maps, so each
    maximum-adjacency phase walks only real edges (heap-ordered) and a
    merge touches only the merged vertex's neighbors instead of every
    active vertex pair.
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise PartitioningError("minimum cut requires at least two nodes")

    # Contractible per-vertex weight maps (vertex -> neighbor -> bytes).
    adjacency: Dict[str, Dict[str, int]] = {n: {} for n in nodes}
    for (a, b), edge in graph.edges():
        adjacency[a][b] = edge.bytes
        adjacency[b][a] = edge.bytes

    groups: Dict[str, Set[str]] = {n: {n} for n in nodes}
    active = set(nodes)

    best_cut = None
    best_partition: FrozenSet[str] = frozenset()

    while len(active) > 1:
        # Minimum cut phase (maximum adjacency ordering), drawn from a
        # lazy-deletion heap with the historical (conn, node) tie-break.
        order = []
        conn: Dict[str, int] = {n: 0 for n in active}
        remaining = set(active)
        heap = [(0, _MaxOrderStr(n)) for n in active]
        heapq.heapify(heap)
        while remaining:
            while True:
                neg_conn, wrapped = heapq.heappop(heap)
                nxt = wrapped.value
                if nxt in remaining and conn[nxt] == -neg_conn:
                    break
            remaining.discard(nxt)
            order.append(nxt)
            for other, other_weight in adjacency[nxt].items():
                if other_weight and other in remaining:
                    connected = conn[other] + other_weight
                    conn[other] = connected
                    heapq.heappush(heap, (-connected, _MaxOrderStr(other)))
        last = order[-1]
        cut_of_phase = conn[last]
        if best_cut is None or cut_of_phase < best_cut:
            best_cut = cut_of_phase
            best_partition = frozenset(groups[last])
        # Merge the last two vertices of the ordering.
        merged_into = order[-2]
        groups[merged_into] |= groups[last]
        merged_adjacency = adjacency[merged_into]
        merged_adjacency.pop(last, None)
        for other, joining_weight in adjacency.pop(last).items():
            if other == merged_into:
                continue
            adjacency[other].pop(last, None)
            if joining_weight:
                combined = merged_adjacency.get(other, 0) + joining_weight
                merged_adjacency[other] = combined
                adjacency[other][merged_into] = combined
        active.discard(last)
    assert best_cut is not None
    return best_cut, best_partition
