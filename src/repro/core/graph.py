"""The execution graph.

The paper represents execution history as a fully connected weighted
graph: each node is a class annotated with the memory occupied by its
objects (and, for the processing experiments, the CPU time spent in its
methods); each edge carries the number of interactions between two
classes and the total bytes exchanged through parameters and return
values.  Interactions within a single class are not recorded.

Nodes are identified by strings.  At class granularity the id is the
class name; under the "Array" enhancement, individual primitive arrays
become their own nodes with ids like ``int[]#1042`` (see
:func:`object_node_id`), allowing the placement of single arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    ItemsView,
    Iterator,
    Optional,
    Set,
    Tuple,
)

from ..errors import PartitioningError


def object_node_id(class_name: str, oid: int) -> str:
    """Node id for a single object tracked at object granularity."""
    return f"{class_name}#{oid}"


def node_class(node_id: str) -> str:
    """Class name of a node id (strips any ``#oid`` suffix).

    >>> node_class("int[]#42")
    'int[]'
    >>> node_class("editor.Document")
    'editor.Document'
    """
    return node_id.split("#", 1)[0]


@dataclass
class NodeStats:
    """Per-node annotations: live memory, CPU self-time, populations."""

    memory_bytes: int = 0
    cpu_seconds: float = 0.0
    live_objects: int = 0
    created_objects: int = 0


@dataclass
class EdgeStats:
    """Per-edge annotations: interaction count and bytes exchanged."""

    count: int = 0
    bytes: int = 0


def edge_key(a: str, b: str) -> Tuple[str, str]:
    """Canonical (sorted) key for the undirected edge between a and b."""
    return (a, b) if a <= b else (b, a)


#: Shared empty mapping backing the views returned for unknown nodes.
_EMPTY_ADJACENCY: Dict[str, EdgeStats] = {}


@dataclass(frozen=True)
class GraphDelta:
    """The set of nodes and edges dirtied since the last drain.

    ``version`` is the graph's monotonic mutation counter at drain time;
    ``nodes`` holds node ids whose :class:`NodeStats` changed (or that
    were created), ``edges`` holds canonical edge keys whose
    :class:`EdgeStats` changed (or that were created).  Nodes and edges
    are never removed from an :class:`ExecutionGraph`, so a delta plus
    the previous values fully describes the change.
    """

    nodes: FrozenSet[str]
    edges: FrozenSet[Tuple[str, str]]
    version: int

    @property
    def empty(self) -> bool:
        return not self.nodes and not self.edges

    def size(self) -> int:
        return len(self.nodes) + len(self.edges)


class ExecutionGraph:
    """Weighted interaction graph over classes (or objects).

    Every mutation entry point bumps a monotonic ``version`` counter and
    records the touched node/edge in a dirty set, so consumers that
    repeatedly re-read the graph (copy-on-write snapshots, warm-started
    partitioning) can do work proportional to the *change* since their
    last visit.  Mutations must go through these entry points — writing
    to a ``NodeStats``/``EdgeStats`` object directly bypasses tracking.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, NodeStats] = {}
        self._edges: Dict[Tuple[str, str], EdgeStats] = {}
        # Per-vertex adjacency: neighbor id -> the shared EdgeStats for
        # that pair.  Keeping the stats in the adjacency map lets the
        # partitioner walk (neighbor, edge) pairs without re-hashing
        # sorted edge keys on the hot path.
        self._adjacency: Dict[str, Dict[str, EdgeStats]] = {}
        self._version = 0
        self._dirty_nodes: Set[str] = set()
        self._dirty_edges: Set[Tuple[str, str]] = set()

    # -- change tracking ---------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every entry point)."""
        return self._version

    def drain_dirty(self) -> GraphDelta:
        """Return and clear the accumulated dirty sets.

        Intended for a single standing consumer per graph (the monitor's
        snapshot, or an incremental partitioning session working on the
        live graph); that consumer passes the delta on to anyone further
        downstream.
        """
        delta = GraphDelta(
            nodes=frozenset(self._dirty_nodes),
            edges=frozenset(self._dirty_edges),
            version=self._version,
        )
        self._dirty_nodes.clear()
        self._dirty_edges.clear()
        return delta

    # -- construction -----------------------------------------------------------

    def ensure_node(self, node_id: str) -> NodeStats:
        stats = self._nodes.get(node_id)
        if stats is None:
            stats = NodeStats()
            self._nodes[node_id] = stats
            self._adjacency[node_id] = {}
            self._version += 1
            self._dirty_nodes.add(node_id)
        return stats

    def add_memory(self, node_id: str, delta: int) -> None:
        stats = self.ensure_node(node_id)
        stats.memory_bytes += delta
        self._version += 1
        self._dirty_nodes.add(node_id)
        if stats.memory_bytes < 0:
            raise PartitioningError(
                f"node {node_id!r} memory went negative ({stats.memory_bytes})"
            )

    def note_object_created(self, node_id: str) -> None:
        stats = self.ensure_node(node_id)
        stats.live_objects += 1
        stats.created_objects += 1
        self._version += 1
        self._dirty_nodes.add(node_id)

    def note_object_freed(self, node_id: str) -> None:
        stats = self.ensure_node(node_id)
        stats.live_objects -= 1
        self._version += 1
        self._dirty_nodes.add(node_id)

    def add_cpu(self, node_id: str, seconds: float) -> None:
        if seconds < 0:
            raise PartitioningError("cpu seconds cannot be negative")
        self.ensure_node(node_id).cpu_seconds += seconds
        self._version += 1
        self._dirty_nodes.add(node_id)

    def record_interaction(self, a: str, b: str, nbytes: int, count: int = 1) -> None:
        """Record ``count`` interactions moving ``nbytes`` between a and b.

        Same-node interactions are ignored, as in the paper ("information
        is recorded only for interactions between two different classes").
        """
        if a == b:
            return
        key = (a, b) if a <= b else (b, a)
        edge = self._edges.get(key)
        if edge is None:
            self.ensure_node(a)
            self.ensure_node(b)
            edge = EdgeStats()
            self._edges[key] = edge
            self._adjacency[a][b] = edge
            self._adjacency[b][a] = edge
        edge.count += count
        edge.bytes += nbytes
        self._version += 1
        self._dirty_edges.add(key)

    # -- queries ------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def link_count(self) -> int:
        """Number of distinct interacting pairs (Table 2's "interactions")."""
        return len(self._edges)

    def nodes(self) -> Iterator[str]:
        return iter(self._nodes)

    def node_items(self) -> ItemsView[str, NodeStats]:
        """Read-only ``(node_id, NodeStats)`` view in insertion order.

        Bulk-export companion to :meth:`nodes`: consumers that lower the
        whole graph into another representation (the flat CSR snapshot
        in :mod:`repro.core.flatgraph`) walk one view instead of paying
        a dict lookup per node.
        """
        return self._nodes.items()

    def node(self, node_id: str) -> NodeStats:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise PartitioningError(f"unknown node {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def neighbors(self, node_id: str) -> AbstractSet[str]:
        """Read-only, set-like view of a node's neighbors.

        The view is live (it reflects later graph mutations) but cannot
        itself be mutated, so callers can never corrupt the adjacency
        structure.
        """
        adjacency = self._adjacency.get(node_id)
        if adjacency is None:
            return _EMPTY_ADJACENCY.keys()
        return adjacency.keys()

    def adjacent_edges(self, node_id: str) -> ItemsView[str, EdgeStats]:
        """Read-only view of ``(neighbor, EdgeStats)`` pairs for a node.

        This is the hot-path companion to :meth:`neighbors`: one dict
        walk yields both the neighbor id and the shared edge statistics,
        with no per-edge key construction or extra hashing.
        """
        adjacency = self._adjacency.get(node_id)
        if adjacency is None:
            return _EMPTY_ADJACENCY.items()
        return adjacency.items()

    def edge(self, a: str, b: str) -> Optional[EdgeStats]:
        return self._edges.get(edge_key(a, b))

    def edges(self) -> Iterator[Tuple[Tuple[str, str], EdgeStats]]:
        return iter(self._edges.items())

    def edge_bytes(self, a: str, b: str) -> int:
        edge = self._edges.get(edge_key(a, b))
        return edge.bytes if edge else 0

    def edge_count(self, a: str, b: str) -> int:
        edge = self._edges.get(edge_key(a, b))
        return edge.count if edge else 0

    def total_memory(self, node_ids: Optional[Iterable[str]] = None) -> int:
        if node_ids is None:
            return sum(s.memory_bytes for s in self._nodes.values())
        return sum(self.node(n).memory_bytes for n in node_ids)

    def total_cpu(self, node_ids: Optional[Iterable[str]] = None) -> float:
        if node_ids is None:
            return sum(s.cpu_seconds for s in self._nodes.values())
        return sum(self.node(n).cpu_seconds for n in node_ids)

    def total_interaction_bytes(self) -> int:
        return sum(e.bytes for e in self._edges.values())

    def total_interaction_count(self) -> int:
        return sum(e.count for e in self._edges.values())

    def cut(self, partition: FrozenSet[str]) -> Tuple[int, int]:
        """Interaction (count, bytes) crossing the given partition.

        ``partition`` is one side; everything else is the other side.
        """
        count = 0
        nbytes = 0
        for (a, b), edge in self._edges.items():
            if (a in partition) != (b in partition):
                count += edge.count
                nbytes += edge.bytes
        return count, nbytes

    def connectivity(self, node_id: str, group: AbstractSet[str]) -> int:
        """Total edge bytes between ``node_id`` and the nodes in ``group``."""
        total = 0
        adjacency = self._adjacency.get(node_id)
        if adjacency:
            for neighbor, edge in adjacency.items():
                if neighbor in group:
                    total += edge.bytes
        return total

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "nodes": {
                n: {
                    "memory_bytes": s.memory_bytes,
                    "cpu_seconds": s.cpu_seconds,
                    "live_objects": s.live_objects,
                    "created_objects": s.created_objects,
                }
                for n, s in self._nodes.items()
            },
            "edges": [
                {"a": a, "b": b, "count": e.count, "bytes": e.bytes}
                for (a, b), e in self._edges.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionGraph":
        graph = cls()
        for node_id, stats in data.get("nodes", {}).items():
            node = graph.ensure_node(node_id)
            node.memory_bytes = stats.get("memory_bytes", 0)
            node.cpu_seconds = stats.get("cpu_seconds", 0.0)
            node.live_objects = stats.get("live_objects", 0)
            node.created_objects = stats.get("created_objects", 0)
        for edge in data.get("edges", []):
            graph.record_interaction(
                edge["a"], edge["b"], edge["bytes"], count=edge["count"]
            )
        return graph

    def copy(self) -> "ExecutionGraph":
        """Deep structural copy, without a serialisation round trip.

        The monitor snapshots the graph on every partitioning decision,
        so this copies node stats, edge stats, and adjacency directly
        instead of going through ``to_dict``/``from_dict``.
        """
        clone = ExecutionGraph.__new__(ExecutionGraph)
        clone._nodes = {
            node_id: NodeStats(
                memory_bytes=stats.memory_bytes,
                cpu_seconds=stats.cpu_seconds,
                live_objects=stats.live_objects,
                created_objects=stats.created_objects,
            )
            for node_id, stats in self._nodes.items()
        }
        clone._edges = {}
        adjacency: Dict[str, Dict[str, EdgeStats]] = {
            node_id: {} for node_id in self._nodes
        }
        for (a, b), edge in self._edges.items():
            copied = EdgeStats(count=edge.count, bytes=edge.bytes)
            clone._edges[(a, b)] = copied
            adjacency[a][b] = copied
            adjacency[b][a] = copied
        clone._adjacency = adjacency
        # The clone starts as its own clean baseline: same version (so
        # snapshot lineage checks line up) but nothing dirty.
        clone._version = self._version
        clone._dirty_nodes = set()
        clone._dirty_edges = set()
        return clone

    def copy_reusing(self, base: "ExecutionGraph",
                     delta: GraphDelta) -> "ExecutionGraph":
        """Copy-on-write copy against a previous snapshot of this graph.

        ``base`` must be an earlier copy of *this* graph and ``delta``
        the exact set of nodes/edges dirtied here since ``base`` was
        taken.  Unchanged ``NodeStats``/``EdgeStats`` objects and whole
        adjacency rows are shared with ``base`` (snapshots are read-only
        by contract), so the cost is proportional to the dirty region —
        O(V) pointer-copies for the top-level dicts plus O(deg) work per
        dirty row — instead of a structural copy of every edge.
        """
        clone = ExecutionGraph.__new__(ExecutionGraph)
        nodes = base._nodes.copy()
        for node_id in delta.nodes:
            stats = self._nodes[node_id]
            nodes[node_id] = NodeStats(
                memory_bytes=stats.memory_bytes,
                cpu_seconds=stats.cpu_seconds,
                live_objects=stats.live_objects,
                created_objects=stats.created_objects,
            )
        edges = base._edges.copy()
        # Rows that must be rebuilt: endpoints of changed edges (their
        # rows must point at the fresh EdgeStats copies) and brand-new
        # nodes (absent from the base adjacency altogether).
        stale_rows: Set[str] = set()
        for key in delta.edges:
            edges[key] = EdgeStats(
                count=self._edges[key].count, bytes=self._edges[key].bytes
            )
            stale_rows.add(key[0])
            stale_rows.add(key[1])
        adjacency = base._adjacency.copy()
        for node_id in delta.nodes:
            if node_id not in adjacency:
                stale_rows.add(node_id)
        for node_id in stale_rows:
            row: Dict[str, EdgeStats] = {}
            for neighbor in self._adjacency[node_id]:
                row[neighbor] = edges[edge_key(node_id, neighbor)]
            adjacency[node_id] = row
        clone._nodes = nodes
        clone._edges = edges
        clone._adjacency = adjacency
        clone._version = self._version
        clone._dirty_nodes = set()
        clone._dirty_edges = set()
        return clone

    def to_dot(self, partition: Optional[FrozenSet[str]] = None,
               min_edge_bytes: int = 0) -> str:
        """Render the graph in Graphviz DOT form (the paper's Figure 5).

        With ``partition`` (the offloaded node set), nodes are coloured
        by side and cut edges drawn dashed — the paper's Figure 5b.
        ``min_edge_bytes`` drops feather-weight edges for readability.
        """
        lines = ["graph execution {", "  layout=neato;", "  overlap=false;"]
        for node_id, stats in sorted(self._nodes.items()):
            label = f"{node_id}\\n{stats.memory_bytes}B"
            if partition is not None and node_id in partition:
                style = 'style=filled, fillcolor="lightsteelblue"'
            else:
                style = 'style=filled, fillcolor="white"'
            lines.append(f'  "{node_id}" [label="{label}", {style}];')
        for (a, b), edge in sorted(self._edges.items()):
            if edge.bytes < min_edge_bytes:
                continue
            attributes = [f'label="{edge.count}"']
            if partition is not None and (a in partition) != (b in partition):
                attributes.append("style=dashed")
            lines.append(
                f'  "{a}" -- "{b}" [{", ".join(attributes)}];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExecutionGraph(nodes={self.node_count}, links={self.link_count})"
        )
