"""Execution and resource monitoring (AIDE's monitoring module).

The monitor subscribes to the VM's interception hooks and maintains the
weighted execution graph described in section 3.4 of the paper: memory
per class, CPU self-time per class, and interaction counts/bytes per
class pair.  It also keeps the aggregate counters behind Table 2 and the
remote-invocation statistics behind Figure 8.

CPU self-time attribution follows Figure 9: time is charged to the class
whose method frame is current, so a method's node receives its gross
time *minus* the time spent in nested calls to other classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..vm.gc import GCReport
from ..vm.hooks import AccessRecord, ExecutionListener, InvokeRecord
from ..vm.objectmodel import JObject
from .graph import ExecutionGraph, GraphDelta, object_node_id

#: Approximate in-memory cost of one graph node / edge, used for the
#: "graph occupies a small amount of storage" measurement.
NODE_STORAGE_BYTES = 48
EDGE_STORAGE_BYTES = 32


@dataclass
class MonitorCounters:
    """Aggregate event counters (the raw material of Table 2)."""

    invocation_events: int = 0
    access_events: int = 0
    objects_created: int = 0
    objects_freed: int = 0
    allocations_bytes: int = 0

    @property
    def interaction_events(self) -> int:
        return self.invocation_events + self.access_events


@dataclass
class RemoteCounters:
    """Remote-interaction counters (the raw material of Figure 8)."""

    remote_invocations: int = 0
    remote_native_invocations: int = 0
    remote_accesses: int = 0
    remote_bytes: int = 0
    #: Remote reads served from the accessor site's remote-read cache:
    #: logically remote (they appear in the execution graph), but zero
    #: bytes on the wire, so they are excluded from ``remote_accesses``
    #: and ``remote_bytes``.
    cached_reads: int = 0
    #: Reliability counters (all zero on a fault-free link): exchanges
    #: retransmitted after a loss, retransmission timeouts charged, and
    #: coalesced batches dropped un-applied when the surrogate died.
    retries: int = 0
    timeouts: int = 0
    dropped_batches: int = 0
    #: Retransmissions recognised by sequence number and acknowledged
    #: without re-applying (the ack, not the request, was lost).
    duplicates_suppressed: int = 0
    #: Emulated seconds the retry machinery charged (timeouts, backoff,
    #: partition waits, latency spikes).
    fault_time_s: float = 0.0

    @property
    def total_remote(self) -> int:
        return self.remote_invocations + self.remote_accesses


@dataclass
class SampledSeries:
    """Running average/maximum over sampled values (Table 2 rows)."""

    samples: int = 0
    total: float = 0.0
    maximum: float = 0.0

    def observe(self, value: float) -> None:
        self.samples += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def average(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.total / self.samples


class ExecutionMonitor(ExecutionListener):
    """Builds the execution graph from hook events."""

    def __init__(
        self, object_granularity_classes: Optional[Set[str]] = None,
        profile: Optional[ExecutionGraph] = None,
    ) -> None:
        # Warm start from previously gathered profiling information
        # (paper section 8): seed the execution graph with a prior
        # run's interaction history.  Callers should pass a profile
        # produced by :func:`repro.core.hints.interaction_profile`, so
        # stale live-memory numbers are not inherited.
        self.graph = profile.copy() if profile is not None else ExecutionGraph()
        self.counters = MonitorCounters()
        self.remote = RemoteCounters()
        #: Classes whose instances get their own graph node (the
        #: section 5.2 "Array" enhancement uses this for primitive
        #: arrays).
        self.object_granularity_classes: Set[str] = set(
            object_granularity_classes or ()
        )
        self._live_objects = 0
        self._live_classes: Dict[str, int] = {}
        self.classes_series = SampledSeries()
        self.objects_series = SampledSeries()
        self.links_series = SampledSeries()
        self.last_gc_report: Optional[GCReport] = None
        # Copy-on-write snapshot state: the last snapshot taken, the
        # graph version it reflects, and the delta that separated it
        # from the snapshot before (consumed by incremental
        # partitioning sessions).
        self._snapshot: Optional[ExecutionGraph] = None
        self._snapshot_version: int = -1
        self.last_snapshot_delta: Optional[GraphDelta] = None

    def merge_profile(self, profile: ExecutionGraph) -> None:
        """Fold a predicted or prior interaction profile into the graph.

        The cold-start path (:meth:`repro.core.engine.OffloadingEngine
        .apply_cold_start`) uses this to seed an already-constructed
        monitor: edge traffic and CPU totals are added, live-memory
        annotations in the profile are ignored (callers should pass
        :func:`repro.core.hints.interaction_profile` output, where they
        are zero).  Every touched node and edge lands in the graph's
        dirty sets, so the next snapshot carries the seed into the
        partitioning session.
        """
        for node_id in profile.nodes():
            stats = profile.node(node_id)
            self.graph.ensure_node(node_id)
            if stats.cpu_seconds:
                self.graph.add_cpu(node_id, stats.cpu_seconds)
        for (a, b), edge in profile.edges():
            self.graph.record_interaction(a, b, edge.bytes,
                                          count=edge.count)

    # -- node naming -----------------------------------------------------------

    def node_for(self, class_name: str, oid: Optional[int]) -> str:
        if oid is not None and class_name in self.object_granularity_classes:
            return object_node_id(class_name, oid)
        return class_name

    # -- hook implementations -----------------------------------------------------

    def on_alloc(self, obj: JObject, site: str) -> None:
        node = self.node_for(obj.class_name, obj.oid)
        self.graph.add_memory(node, obj.size_bytes)
        self.graph.note_object_created(node)
        self.counters.objects_created += 1
        self.counters.allocations_bytes += obj.size_bytes
        self._live_objects += 1
        self._live_classes[obj.class_name] = (
            self._live_classes.get(obj.class_name, 0) + 1
        )

    def on_free(self, obj: JObject) -> None:
        node = self.node_for(obj.class_name, obj.oid)
        # A missing node (e.g. a warm-start profile that never saw this
        # class allocate) only skips the graph update; the aggregate
        # counters must stay consistent with the event stream.
        if self.graph.has_node(node):
            self.graph.add_memory(node, -obj.size_bytes)
            self.graph.note_object_freed(node)
        self.counters.objects_freed += 1
        if self._live_objects > 0:
            self._live_objects -= 1
        remaining = self._live_classes.get(obj.class_name, 0) - 1
        if remaining <= 0:
            self._live_classes.pop(obj.class_name, None)
        else:
            self._live_classes[obj.class_name] = remaining

    def on_invoke(self, record: InvokeRecord) -> None:
        caller = self.node_for(record.caller_class, record.caller_oid)
        callee = self.node_for(record.callee_class, record.callee_oid)
        nbytes = record.arg_bytes + record.ret_bytes
        self.graph.record_interaction(caller, callee, nbytes)
        self.counters.invocation_events += 1
        if record.remote:
            self.remote.remote_invocations += 1
            self.remote.remote_bytes += nbytes
            if record.is_native:
                self.remote.remote_native_invocations += 1

    def on_access(self, record: AccessRecord) -> None:
        accessor = self.node_for(record.accessor_class, record.accessor_oid)
        owner = self.node_for(record.owner_class, record.owner_oid)
        self.graph.record_interaction(accessor, owner, record.value_bytes)
        self.counters.access_events += 1
        if record.remote:
            if record.cached:
                self.remote.cached_reads += 1
            else:
                self.remote.remote_accesses += 1
                self.remote.remote_bytes += record.value_bytes

    def on_cpu(self, class_name: str, site: str, seconds: float) -> None:
        self.graph.add_cpu(class_name, seconds)

    def on_gc_report(self, report: GCReport, site: str) -> None:
        self.last_gc_report = report
        self.classes_series.observe(len(self._live_classes))
        self.objects_series.observe(self._live_objects)
        self.links_series.observe(self.graph.link_count)

    # -- derived metrics ----------------------------------------------------------

    @property
    def live_objects(self) -> int:
        return self._live_objects

    @property
    def live_classes(self) -> int:
        return len(self._live_classes)

    def graph_storage_bytes(self) -> int:
        """Approximate in-memory footprint of the execution graph."""
        return (
            self.graph.node_count * NODE_STORAGE_BYTES
            + self.graph.link_count * EDGE_STORAGE_BYTES
        )

    def snapshot(self) -> ExecutionGraph:
        """Copy of the execution graph for a partitioning decision.

        Snapshots are copy-on-write: the first call structurally copies
        the graph, later calls reuse the unchanged node stats, edge
        stats, and whole adjacency rows of the previous snapshot and
        copy only the rows the graph dirtied in between.  When nothing
        changed at all the same snapshot object is returned again.
        Snapshots are read-only by contract; the delta between the two
        most recent snapshots is left in :attr:`last_snapshot_delta`
        for incremental partitioning sessions.

        The monitor is the graph's single dirty-set consumer: code that
        drains ``monitor.graph`` directly must not also use
        :meth:`snapshot`.

        Unchanged-snapshot reuse matters downstream: returning the same
        object (same identity, same ``version``) lets the partitioner's
        flat CSR snapshot cache (``core.flatgraph.snapshot``) skip
        recompiling, and lets an incremental session hand the delta
        straight to ``FlatGraph.sync`` instead of diffing graphs.
        """
        graph = self.graph
        delta = graph.drain_dirty()
        if self._snapshot is not None and delta.empty:
            self.last_snapshot_delta = delta
            return self._snapshot
        if self._snapshot is None:
            snap = graph.copy()
            # The baseline snapshot covers the whole graph; report the
            # delta as such so a session cold-starts from it.
            delta = GraphDelta(
                nodes=frozenset(graph.nodes()),
                edges=frozenset(key for key, _ in graph.edges()),
                version=graph.version,
            )
        else:
            snap = graph.copy_reusing(self._snapshot, delta)
        self._snapshot = snap
        self._snapshot_version = graph.version
        self.last_snapshot_delta = delta
        return snap


class ResourceMonitor(ExecutionListener):
    """Tracks per-site heap pressure from GC reports.

    Policies read the latest report; experiments read the whole series.
    """

    def __init__(self, keep_series: bool = True) -> None:
        self.latest: Dict[str, GCReport] = {}
        self.series: Dict[str, list] = {}
        self._keep_series = keep_series

    def on_gc_report(self, report: GCReport, site: str) -> None:
        self.latest[site] = report
        if self._keep_series:
            self.series.setdefault(site, []).append(report)

    def free_fraction(self, site: str) -> Optional[float]:
        report = self.latest.get(site)
        return report.free_fraction if report else None
