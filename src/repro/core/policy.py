"""Trigger and partitioning policies.

Two policy families drive offloading:

* the **trigger policy** decides *when* to attempt a partitioning, from
  the garbage collector's free-memory reports.  The paper's initial
  policy triggers when three successive GC cycles report either that no
  additional memory could be freed or that less than 5% of the heap is
  available (section 5.1);
* the **partitioning policy** decides *which* candidate partitioning (if
  any) to adopt.  The paper's memory policy requires a candidate to free
  at least 20% of the heap and then minimises the historical interaction
  bytes across the cut; the processing policy (section 5.2) minimises the
  predicted completion time and refuses to offload when no candidate
  beats local execution — the Biomer outcome.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, List, Optional, Tuple

from ..errors import ConfigurationError, NoBeneficialPartitionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .flatgraph import FlatChain
from ..net.link import LinkModel
from ..net.wavelan import WAVELAN_11MBPS
from ..vm.gc import GCReport
from .mincut import CandidatePartition

# --------------------------------------------------------------------------
# Triggering
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TriggerConfig:
    """Parameters of the memory trigger.

    ``free_threshold`` is the free-heap fraction below which a GC report
    counts as "low"; ``tolerance`` is how many consecutive low reports
    are required before a partitioning is attempted.  The paper sweeps
    the threshold over 2%–50% and the tolerance over 1–3 (Figure 7).
    """

    free_threshold: float = 0.05
    tolerance: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.free_threshold < 1.0:
            raise ConfigurationError(
                f"free_threshold must be in (0, 1), got {self.free_threshold}"
            )
        if self.tolerance < 1:
            raise ConfigurationError("tolerance must be at least 1")


class MemoryTrigger:
    """Counts consecutive low-memory GC reports."""

    def __init__(self, config: TriggerConfig = TriggerConfig()) -> None:
        self.config = config
        self._consecutive = 0
        self.fired_count = 0

    def observe(self, report: GCReport) -> bool:
        """Feed one GC report; returns True when the trigger fires.

        A report is "low" when free heap is under the threshold, or when
        a *pressure-triggered* cycle failed to free anything ("additional
        memory cannot be freed").  A zero-freed cycle on an otherwise
        healthy heap — e.g. a periodic allocation-count cycle early in a
        run — is not a pressure signal.
        """
        pressured = report.reason in ("space-pressure", "space-exhausted",
                                      "migration-pressure")
        low = (
            report.free_fraction < self.config.free_threshold
            or (report.freed_bytes == 0 and pressured)
        )
        if not low:
            self._consecutive = 0
            return False
        self._consecutive += 1
        if self._consecutive >= self.config.tolerance:
            self._consecutive = 0
            self.fired_count += 1
            return True
        return False

    def reset(self) -> None:
        self._consecutive = 0


class PeriodicTrigger:
    """Fires every ``interval`` seconds of virtual time (re-evaluation)."""

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        self.interval = interval
        self._last_fired = 0.0
        self.fired_count = 0

    def observe_time(self, now: float) -> bool:
        if now - self._last_fired >= self.interval:
            self._last_fired = now
            self.fired_count += 1
            return True
        return False


class BandwidthTrendTrigger:
    """Fires when the windowed link-bandwidth estimate trends below a
    threshold — the roaming client's early-warning system.

    ``observe`` keeps the last ``window`` (time, bandwidth) samples,
    fits a least-squares slope, and projects the bandwidth at ``now +
    horizon_s``.  When either the projection or the current sample sits
    below ``threshold_bps``, it returns ``"fire"`` — the platform
    should repatriate or hand off *before* the link becomes useless.
    The trigger then latches (no repeated fires while degraded) until a
    sample at or above ``restore_bps`` returns ``"recover"``, at which
    point re-offloading through the warm-start repair path is safe.
    Returns ``None`` when nothing changed.
    """

    def __init__(
        self,
        threshold_bps: float,
        horizon_s: float = 2.0,
        window: int = 3,
        restore_bps: Optional[float] = None,
    ) -> None:
        if threshold_bps <= 0:
            raise ConfigurationError("threshold must be positive")
        if horizon_s < 0:
            raise ConfigurationError("horizon cannot be negative")
        if window < 2:
            raise ConfigurationError("trend window needs >= 2 samples")
        self.threshold_bps = threshold_bps
        self.horizon_s = horizon_s
        self.window = window
        self.restore_bps = (
            threshold_bps if restore_bps is None else restore_bps
        )
        if self.restore_bps < threshold_bps:
            raise ConfigurationError(
                "restore level cannot sit below the fire threshold"
            )
        self._samples: List[Tuple[float, float]] = []
        self._degraded = False
        self.fired_count = 0
        self.recovered_count = 0

    def projected_bps(self, now: float) -> Optional[float]:
        """Least-squares projection at ``now + horizon_s`` (None until
        the window holds two distinct-time samples)."""
        samples = self._samples
        if len(samples) < 2:
            return None
        n = len(samples)
        mean_t = sum(t for t, _ in samples) / n
        mean_b = sum(b for _, b in samples) / n
        var_t = sum((t - mean_t) ** 2 for t, _ in samples)
        if var_t == 0.0:
            return None
        slope = sum(
            (t - mean_t) * (b - mean_b) for t, b in samples
        ) / var_t
        return mean_b + slope * (now + self.horizon_s - mean_t)

    def observe(self, now: float, bandwidth_bps: float) -> Optional[str]:
        self._samples.append((now, bandwidth_bps))
        if len(self._samples) > self.window:
            del self._samples[: len(self._samples) - self.window]
        if self._degraded:
            if bandwidth_bps >= self.restore_bps:
                self._degraded = False
                self._samples = [(now, bandwidth_bps)]
                self.recovered_count += 1
                return "recover"
            return None
        projected = self.projected_bps(now)
        below_now = bandwidth_bps < self.threshold_bps
        below_soon = projected is not None and projected < self.threshold_bps
        if below_now or below_soon:
            self._degraded = True
            self.fired_count += 1
            return "fire"
        return None

    def reset(self) -> None:
        self._samples.clear()
        self._degraded = False


# --------------------------------------------------------------------------
# Partition evaluation
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EvaluationContext:
    """Everything a partitioning policy may consult.

    ``elapsed`` is the execution-history duration behind the graph; it
    turns historical cut bytes into a predicted bandwidth.  ``total_cpu``
    is the total reference CPU time recorded in the graph.
    """

    heap_capacity: int
    client_speed: float = 1.0
    surrogate_speed: float = 1.0
    link: LinkModel = WAVELAN_11MBPS
    total_cpu: float = 0.0
    elapsed: float = 0.0

    def __post_init__(self) -> None:
        if self.heap_capacity <= 0:
            raise ConfigurationError("heap_capacity must be positive")
        if self.client_speed <= 0 or self.surrogate_speed <= 0:
            raise ConfigurationError("device speeds must be positive")


@dataclass(frozen=True)
class PolicyDecision:
    """A selected candidate plus the policy's predictions about it."""

    candidate: CandidatePartition
    policy_name: str
    predicted_bandwidth: float = 0.0
    predicted_time: Optional[float] = None
    original_time: Optional[float] = None

    @property
    def offload_nodes(self):
        return self.candidate.surrogate_nodes

    @property
    def freed_bytes(self) -> int:
        return self.candidate.surrogate_memory


class PartitionPolicy:
    """Base partitioning policy; subclasses implement :meth:`evaluate`."""

    name = "abstract"

    def evaluate(
        self, candidates: List[CandidatePartition], ctx: EvaluationContext
    ) -> PolicyDecision:
        raise NotImplementedError

    def decision_for(
        self, candidate: CandidatePartition, ctx: EvaluationContext
    ) -> PolicyDecision:
        """Rebuild the full decision for an already-selected winner.

        Used by the evaluation memo: the *selection* (which candidate
        wins, or that every candidate is refused) is a pure function of
        the candidates' scalar statistics and the cached context
        fields, so it can be replayed from the cache — but the derived
        predictions (bandwidth, completion times) are recomputed fresh
        against the current context so a cache hit is indistinguishable
        from a full evaluation.
        """
        raise NotImplementedError

    def evaluate_chain(
        self, chain: "FlatChain", ctx: EvaluationContext
    ) -> PolicyDecision:
        """Evaluate a columnar candidate chain (see ``core.flatgraph``).

        The built-in policies override this with a scan over the chain's
        statistics columns that materialises only the winning candidate;
        selections and refusals are identical to :meth:`evaluate` on the
        materialised list (same float expressions in the same order,
        same first-of-equal-key tie-breaks, same refusal messages).
        This base implementation keeps third-party subclasses working by
        materialising the chain and deferring to their :meth:`evaluate`.
        """
        return self.evaluate(chain.candidates(), ctx)


# --------------------------------------------------------------------------
# Policy-evaluation memoisation
# --------------------------------------------------------------------------


#: Cache sentinel distinguishing a memoised refusal from a winner index.
_REFUSED = "refused"


class PolicyEvaluationCache:
    """Bounded LRU memo of policy selections.

    Keys combine the policy instance, a fingerprint of the candidate
    chain, and the context fields the selection depends on; values are
    either the winning candidate's index or a memoised refusal reason.
    Storing the *index* (rather than the decision) keeps candidate node
    sets lazy and lets a hit rebuild its decision against the current
    candidate list, so a collision between two graphs with identical
    scalar statistics is still answered correctly — every policy
    selects purely on those scalars.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ConfigurationError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, Tuple[str, object]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def put(self, key: Hashable, value: Tuple[str, object]) -> None:
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        while len(entries) > self.maxsize:
            entries.popitem(last=False)


def candidates_fingerprint(
    candidates: List[CandidatePartition],
) -> Tuple[Tuple[int, int, int, float, float], ...]:
    """Hashable fingerprint of a candidate chain's scalar statistics.

    Node sets are deliberately excluded: materialising them would cost
    O(V) per candidate (defeating the generator's lazy chain), and no
    policy consults them during selection.
    """
    return tuple(
        (c.cut_count, c.cut_bytes, c.surrogate_memory,
         c.surrogate_cpu, c.client_cpu)
        for c in candidates
    )


def context_key(ctx: EvaluationContext) -> Tuple:
    """The context fields a policy selection can depend on.

    ``elapsed`` is excluded — it only scales the predicted bandwidth,
    which is recomputed fresh on every cache hit.  ``total_cpu`` is
    rounded (it is a float accumulation) so equivalent histories key
    identically.
    """
    return (
        ctx.heap_capacity,
        ctx.client_speed,
        ctx.surrogate_speed,
        ctx.link,
        round(ctx.total_cpu, 9),
    )


def evaluate_with_cache(
    policy: PartitionPolicy,
    candidates: List[CandidatePartition],
    ctx: EvaluationContext,
    cache: PolicyEvaluationCache,
) -> Tuple[PolicyDecision, bool]:
    """Evaluate through the memo; returns ``(decision, was_cache_hit)``.

    Raises :class:`NoBeneficialPartitionError` exactly as
    ``policy.evaluate`` would — refusals are memoised too (with their
    reason), since a refused epoch is the steady state of the
    re-evaluation loop.
    """
    key = (id(policy), candidates_fingerprint(candidates),
           context_key(ctx))
    entry = cache.get(key)
    if entry is not None:
        kind, payload = entry
        if kind == _REFUSED:
            raise NoBeneficialPartitionError(payload)
        return policy.decision_for(candidates[payload], ctx), True
    try:
        decision = policy.evaluate(candidates, ctx)
    except NoBeneficialPartitionError as refusal:
        cache.put(key, (_REFUSED, str(refusal)))
        raise
    winner = decision.candidate
    index = next(
        i for i, candidate in enumerate(candidates) if candidate is winner
    )
    cache.put(key, ("selected", index))
    return decision, False


def evaluate_chain_with_cache(
    policy: PartitionPolicy,
    chain: "FlatChain",
    ctx: EvaluationContext,
    cache: PolicyEvaluationCache,
) -> Tuple[PolicyDecision, bool]:
    """Chain-shaped :func:`evaluate_with_cache`.

    The chain fingerprint hashes the statistics columns as packed byte
    strings (so keys never collide with list-shaped entries, whose
    fingerprints are tuples of tuples), and a hit replays the winner by
    chain index.  Chain candidates carry their index as
    ``_moves_applied``; if a custom policy's base-path evaluation hands
    back a candidate from somewhere else entirely, the selection is
    simply not memoised.
    """
    key = (id(policy), chain.fingerprint(), context_key(ctx))
    entry = cache.get(key)
    if entry is not None:
        kind, payload = entry
        if kind == _REFUSED:
            raise NoBeneficialPartitionError(payload)
        return policy.decision_for(chain.candidate(payload), ctx), True
    try:
        decision = policy.evaluate_chain(chain, ctx)
    except NoBeneficialPartitionError as refusal:
        cache.put(key, (_REFUSED, str(refusal)))
        raise
    winner = decision.candidate
    materialized = chain.materialized()
    if materialized is not None:
        index = next(
            (i for i, c in enumerate(materialized) if c is winner), None
        )
    else:
        index = winner._moves_applied
        if not 0 <= index < chain.k:
            index = None
    if index is not None:
        cache.put(key, ("selected", index))
    return decision, False


class MemoryPartitionPolicy(PartitionPolicy):
    """Free enough memory at minimum network bandwidth (section 5.1).

    Any acceptable candidate must move at least ``min_free_fraction`` of
    the heap off the client; among those, the candidate with the lowest
    historical cut bytes wins (ties broken towards freeing more).  This
    is why the paper's JavaNote run offloaded ~90% of the heap when only
    20% was required: the bandwidth minimum happened to be there.
    """

    name = "memory-min-bandwidth"

    def __init__(self, min_free_fraction: float = 0.20) -> None:
        if not 0.0 < min_free_fraction <= 1.0:
            raise ConfigurationError(
                f"min_free_fraction must be in (0, 1], got {min_free_fraction}"
            )
        self.min_free_fraction = min_free_fraction

    def evaluate(
        self, candidates: List[CandidatePartition], ctx: EvaluationContext
    ) -> PolicyDecision:
        required = self.min_free_fraction * ctx.heap_capacity
        eligible = [
            c for c in candidates
            if c.offloads_anything and c.surrogate_memory >= required
        ]
        if not eligible:
            raise NoBeneficialPartitionError(
                f"no candidate frees the required {required:.0f} bytes"
            )
        best = min(eligible, key=lambda c: (c.cut_bytes, -c.surrogate_memory))
        return self.decision_for(best, ctx)

    def evaluate_chain(
        self, chain: "FlatChain", ctx: EvaluationContext
    ) -> PolicyDecision:
        required = self.min_free_fraction * ctx.heap_capacity
        memory = chain.surrogate_memory
        cut_bytes = chain.cut_bytes
        best = -1
        best_bytes = 0
        best_memory = 0
        for i in range(chain.k):
            freed = memory[i]
            if freed >= required:
                nbytes = cut_bytes[i]
                # Strict improvement only: ties keep the earliest
                # candidate, exactly like min() over the list.
                if (best < 0 or nbytes < best_bytes
                        or (nbytes == best_bytes and freed > best_memory)):
                    best = i
                    best_bytes = nbytes
                    best_memory = freed
        if best < 0:
            raise NoBeneficialPartitionError(
                f"no candidate frees the required {required:.0f} bytes"
            )
        return self.decision_for(chain.candidate(best), ctx)

    def decision_for(
        self, candidate: CandidatePartition, ctx: EvaluationContext
    ) -> PolicyDecision:
        bandwidth = (
            candidate.cut_bytes / ctx.elapsed if ctx.elapsed > 0 else 0.0
        )
        return PolicyDecision(
            candidate=candidate,
            policy_name=self.name,
            predicted_bandwidth=bandwidth,
        )


def predict_completion_time(
    candidate: CandidatePartition, ctx: EvaluationContext
) -> float:
    """Predicted run time if history repeated under this placement.

    Client-side CPU runs at the client's speed, surrogate-side CPU at
    the surrogate's, every historical cut interaction pays a round trip,
    the cut bytes ride the link, and the offloaded state must first be
    migrated.
    """
    compute = (
        candidate.client_cpu / ctx.client_speed
        + candidate.surrogate_cpu / ctx.surrogate_speed
    )
    communication = (
        candidate.cut_count * ctx.link.rtt
        + (candidate.cut_bytes * 8) / ctx.link.bandwidth_bps
    )
    migration = ctx.link.bulk_transfer(candidate.surrogate_memory)
    return compute + communication + migration


class CpuPartitionPolicy(PartitionPolicy):
    """Minimise predicted completion time; refuse when not beneficial.

    ``min_speedup_fraction`` demands that the predicted time beat local
    execution by at least that margin — the paper's platform, with the
    margin at zero, correctly declined to offload Biomer because its
    best candidate predicted 790 s against 750 s locally.
    """

    name = "cpu-min-completion"

    def __init__(self, min_speedup_fraction: float = 0.0) -> None:
        if min_speedup_fraction < 0 or min_speedup_fraction >= 1:
            raise ConfigurationError(
                "min_speedup_fraction must be in [0, 1)"
            )
        self.min_speedup_fraction = min_speedup_fraction

    def evaluate(
        self, candidates: List[CandidatePartition], ctx: EvaluationContext
    ) -> PolicyDecision:
        offloading = [
            c for c in candidates
            if c.offloads_anything and c.surrogate_cpu > 0
        ]
        if not offloading:
            raise NoBeneficialPartitionError(
                "no candidate moves any computation"
            )
        original_time = ctx.total_cpu / ctx.client_speed
        best = min(offloading, key=lambda c: predict_completion_time(c, ctx))
        predicted = predict_completion_time(best, ctx)
        if predicted >= original_time * (1.0 - self.min_speedup_fraction):
            raise NoBeneficialPartitionError(
                f"best candidate predicts {predicted:.1f}s vs "
                f"{original_time:.1f}s locally"
            )
        return self.decision_for(best, ctx)

    def evaluate_chain(
        self, chain: "FlatChain", ctx: EvaluationContext
    ) -> PolicyDecision:
        surrogate_cpu = chain.surrogate_cpu
        client_cpu = chain.client_cpu
        cut_count = chain.cut_count
        cut_bytes = chain.cut_bytes
        memory = chain.surrogate_memory
        client_speed = ctx.client_speed
        surrogate_speed = ctx.surrogate_speed
        link = ctx.link
        rtt = link.rtt
        bandwidth_bps = link.bandwidth_bps
        bulk_transfer = link.bulk_transfer
        best = -1
        predicted = 0.0
        for i in range(chain.k):
            if surrogate_cpu[i] > 0:
                # Term-for-term the same expression as
                # predict_completion_time, so the floats agree bit for
                # bit with the legacy evaluation.
                compute = (
                    client_cpu[i] / client_speed
                    + surrogate_cpu[i] / surrogate_speed
                )
                communication = (
                    cut_count[i] * rtt
                    + (cut_bytes[i] * 8) / bandwidth_bps
                )
                total = compute + communication + bulk_transfer(memory[i])
                if best < 0 or total < predicted:
                    best = i
                    predicted = total
        if best < 0:
            raise NoBeneficialPartitionError(
                "no candidate moves any computation"
            )
        original_time = ctx.total_cpu / ctx.client_speed
        if predicted >= original_time * (1.0 - self.min_speedup_fraction):
            raise NoBeneficialPartitionError(
                f"best candidate predicts {predicted:.1f}s vs "
                f"{original_time:.1f}s locally"
            )
        return self.decision_for(chain.candidate(best), ctx)

    def decision_for(
        self, candidate: CandidatePartition, ctx: EvaluationContext
    ) -> PolicyDecision:
        predicted = predict_completion_time(candidate, ctx)
        bandwidth = (
            candidate.cut_bytes / ctx.elapsed if ctx.elapsed > 0 else 0.0
        )
        return PolicyDecision(
            candidate=candidate,
            policy_name=self.name,
            predicted_bandwidth=bandwidth,
            predicted_time=predicted,
            original_time=ctx.total_cpu / ctx.client_speed,
        )


def predict_compute_only(
    candidate: CandidatePartition, ctx: EvaluationContext
) -> float:
    """Optimistic prediction: compute and migration, no interaction cost.

    This is the naive estimator an early system uses before it has an
    accurate model of remote-interaction costs — it sees only the CPU
    gain of the faster surrogate and the one-off migration.
    """
    compute = (
        candidate.client_cpu / ctx.client_speed
        + candidate.surrogate_cpu / ctx.surrogate_speed
    )
    return compute + ctx.link.bulk_transfer(candidate.surrogate_memory)


class BestEffortCpuPolicy(CpuPartitionPolicy):
    """CPU policy that always offloads its *optimistically* best candidate.

    Used to reproduce the paper's "Initial" bars in Figure 10: the
    system offloads the partition with the greatest apparent compute
    gain, blind to the remote-interaction cost it will realise — which
    is exactly why the unenhanced prototype's offloads came out worse
    than local execution.  It also serves as the "manual partitioning"
    probe for Biomer: forcing the compute partition the refusal policy
    declined shows what that partition actually realises.
    """

    name = "cpu-best-effort"

    def evaluate(
        self, candidates: List[CandidatePartition], ctx: EvaluationContext
    ) -> PolicyDecision:
        offloading = [
            c for c in candidates
            if c.offloads_anything and c.surrogate_cpu > 0
        ]
        if not offloading:
            raise NoBeneficialPartitionError(
                "no candidate moves any computation"
            )
        # Offload (essentially) all of the movable computation, placed
        # so that the historical interaction bytes across the cut are
        # minimal — the same bandwidth-minimising objective the memory
        # policy uses, applied to the compute cluster.
        max_cpu = max(c.surrogate_cpu for c in offloading)
        eligible = [
            c for c in offloading if c.surrogate_cpu >= 0.95 * max_cpu
        ]
        best = min(eligible, key=lambda c: (c.cut_bytes, c.cut_count))
        return self.decision_for(best, ctx)

    def evaluate_chain(
        self, chain: "FlatChain", ctx: EvaluationContext
    ) -> PolicyDecision:
        surrogate_cpu = chain.surrogate_cpu
        cut_bytes = chain.cut_bytes
        cut_count = chain.cut_count
        max_cpu = 0.0
        any_offloading = False
        for i in range(chain.k):
            cpu = surrogate_cpu[i]
            if cpu > 0:
                any_offloading = True
                if cpu > max_cpu:
                    max_cpu = cpu
        if not any_offloading:
            raise NoBeneficialPartitionError(
                "no candidate moves any computation"
            )
        floor = 0.95 * max_cpu
        best = -1
        best_bytes = 0
        best_count = 0
        for i in range(chain.k):
            if surrogate_cpu[i] > 0 and surrogate_cpu[i] >= floor:
                nbytes = cut_bytes[i]
                count = cut_count[i]
                if (best < 0 or nbytes < best_bytes
                        or (nbytes == best_bytes and count < best_count)):
                    best = i
                    best_bytes = nbytes
                    best_count = count
        return self.decision_for(chain.candidate(best), ctx)


class CombinedPartitionPolicy(PartitionPolicy):
    """Memory constraint plus completion-time objective (paper section 8).

    The paper lists "simultaneously consider multiple constraints" as
    future work; this policy implements the natural combination — free
    the required memory, then minimise predicted completion time among
    the eligible candidates.
    """

    name = "combined-memory-cpu"

    def __init__(
        self, min_free_fraction: float = 0.20, min_speedup_fraction: float = 0.0
    ) -> None:
        self._memory = MemoryPartitionPolicy(min_free_fraction)
        self.min_speedup_fraction = min_speedup_fraction

    def evaluate(
        self, candidates: List[CandidatePartition], ctx: EvaluationContext
    ) -> PolicyDecision:
        required = self._memory.min_free_fraction * ctx.heap_capacity
        eligible = [
            c for c in candidates
            if c.offloads_anything and c.surrogate_memory >= required
        ]
        if not eligible:
            raise NoBeneficialPartitionError(
                f"no candidate frees the required {required:.0f} bytes"
            )
        best = min(eligible, key=lambda c: predict_completion_time(c, ctx))
        return self.decision_for(best, ctx)

    def evaluate_chain(
        self, chain: "FlatChain", ctx: EvaluationContext
    ) -> PolicyDecision:
        required = self._memory.min_free_fraction * ctx.heap_capacity
        memory = chain.surrogate_memory
        surrogate_cpu = chain.surrogate_cpu
        client_cpu = chain.client_cpu
        cut_count = chain.cut_count
        cut_bytes = chain.cut_bytes
        client_speed = ctx.client_speed
        surrogate_speed = ctx.surrogate_speed
        link = ctx.link
        rtt = link.rtt
        bandwidth_bps = link.bandwidth_bps
        bulk_transfer = link.bulk_transfer
        best = -1
        best_time = 0.0
        for i in range(chain.k):
            if memory[i] >= required:
                compute = (
                    client_cpu[i] / client_speed
                    + surrogate_cpu[i] / surrogate_speed
                )
                communication = (
                    cut_count[i] * rtt
                    + (cut_bytes[i] * 8) / bandwidth_bps
                )
                total = compute + communication + bulk_transfer(memory[i])
                if best < 0 or total < best_time:
                    best = i
                    best_time = total
        if best < 0:
            raise NoBeneficialPartitionError(
                f"no candidate frees the required {required:.0f} bytes"
            )
        return self.decision_for(chain.candidate(best), ctx)

    def decision_for(
        self, candidate: CandidatePartition, ctx: EvaluationContext
    ) -> PolicyDecision:
        bandwidth = (
            candidate.cut_bytes / ctx.elapsed if ctx.elapsed > 0 else 0.0
        )
        return PolicyDecision(
            candidate=candidate,
            policy_name=self.name,
            predicted_bandwidth=bandwidth,
            predicted_time=predict_completion_time(candidate, ctx),
            original_time=ctx.total_cpu / ctx.client_speed,
        )


@dataclass(frozen=True)
class OffloadPolicy:
    """A complete policy point: trigger parameters + partition parameters.

    This is the unit the Figure 7 sweep iterates over: the triggering
    threshold (2%–50% free), the tolerance to low-memory signals (1–3
    events), and the minimum memory to free (10%–80%).
    """

    trigger: TriggerConfig = field(default_factory=TriggerConfig)
    min_free_fraction: float = 0.20

    @classmethod
    def initial(cls) -> "OffloadPolicy":
        """The paper's initial policy: 5% threshold, 3 reports, free 20%."""
        return cls(TriggerConfig(free_threshold=0.05, tolerance=3), 0.20)

    def make_trigger(self) -> MemoryTrigger:
        return MemoryTrigger(self.trigger)

    def make_partition_policy(self) -> MemoryPartitionPolicy:
        return MemoryPartitionPolicy(self.min_free_fraction)

    def label(self) -> str:
        return (
            f"trigger<{self.trigger.free_threshold:.0%}"
            f" x{self.trigger.tolerance}, free>={self.min_free_fraction:.0%}"
        )


def policy_sweep(
    thresholds=(0.02, 0.05, 0.10, 0.25, 0.50),
    tolerances=(1, 2, 3),
    min_free_fractions=(0.10, 0.20, 0.40, 0.60, 0.80),
) -> List[OffloadPolicy]:
    """The Figure 7 policy grid (defaults follow the paper's ranges)."""
    grid = []
    for threshold in thresholds:
        for tolerance in tolerances:
            for min_free in min_free_fractions:
                grid.append(
                    OffloadPolicy(
                        TriggerConfig(free_threshold=threshold,
                                      tolerance=tolerance),
                        min_free,
                    )
                )
    return grid
