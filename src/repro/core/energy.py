"""Energy accounting and the battery-saving policy.

The paper defines offloading as beneficial when "it improves the
performance of the application (e.g., its speed or battery life)" and
gives the motivating example of a user who chooses "to extend battery
life at the cost of slower execution in order to allow the device to
continue functioning during a long airplane flight" (section 2); its
future work adds "constraints on other resources such as network
bandwidth and power" (section 8).

This module supplies the two pieces that vision needs:

* :class:`PowerProfile` — a simple device power model (active CPU
  wattage, radio transmit/receive energy per byte, per-message radio
  wake cost, idle draw), of early-2000s magnitude by default;
* :class:`EnergyPartitionPolicy` — selects the candidate partitioning
  that minimises predicted *client* energy, refusing when no candidate
  beats local execution.  Note the trade the paper describes: remote
  execution may be slower in wall-clock terms yet still win on battery,
  because idle draw is far below active draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError, NoBeneficialPartitionError
from .mincut import CandidatePartition
from .policy import (
    EvaluationContext,
    PartitionPolicy,
    PolicyDecision,
    predict_completion_time,
)


@dataclass(frozen=True)
class PowerProfile:
    """Client-device power model (2001 PDA magnitudes by default)."""

    #: Draw while the CPU executes guest work.
    cpu_active_watts: float = 2.4
    #: Draw while the device waits on remote execution or idles.
    idle_watts: float = 0.25
    #: Radio energy per byte moved (either direction, WaveLAN-era).
    radio_j_per_byte: float = 2.0e-6
    #: Radio wake/transaction cost per message exchange.
    radio_j_per_message: float = 1.5e-3

    def __post_init__(self) -> None:
        for name in ("cpu_active_watts", "idle_watts", "radio_j_per_byte",
                     "radio_j_per_message"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} cannot be negative")

    # -- accounting -------------------------------------------------------------

    def compute_energy(self, cpu_seconds: float) -> float:
        return self.cpu_active_watts * cpu_seconds

    def idle_energy(self, seconds: float) -> float:
        return self.idle_watts * seconds

    def radio_energy(self, nbytes: int, messages: int) -> float:
        return (self.radio_j_per_byte * nbytes
                + self.radio_j_per_message * messages)

    def run_energy(self, client_cpu_seconds: float, waiting_seconds: float,
                   radio_bytes: int, radio_messages: int) -> float:
        """Total client joules for one (partial) run."""
        return (
            self.compute_energy(client_cpu_seconds)
            + self.idle_energy(waiting_seconds)
            + self.radio_energy(radio_bytes, radio_messages)
        )


#: A 2001-era PDA battery-friendly reference profile.
JORNADA_POWER = PowerProfile()


def predict_client_energy(
    candidate: CandidatePartition,
    ctx: EvaluationContext,
    power: PowerProfile,
) -> float:
    """Predicted client joules if history repeated under this placement.

    Client CPU burns at active draw; time spent waiting for the
    surrogate (its compute plus the link time) burns idle draw; every
    historical cut interaction costs radio energy for two messages plus
    its bytes; the migration streams its bytes once.
    """
    client_cpu = candidate.client_cpu / ctx.client_speed
    waiting = (
        candidate.surrogate_cpu / ctx.surrogate_speed
        + candidate.cut_count * ctx.link.rtt
        + (candidate.cut_bytes * 8) / ctx.link.bandwidth_bps
        + ctx.link.bulk_transfer(candidate.surrogate_memory)
    )
    radio_bytes = candidate.cut_bytes + candidate.surrogate_memory
    radio_messages = 2 * candidate.cut_count + 1
    return power.run_energy(client_cpu, waiting, radio_bytes, radio_messages)


def local_energy(ctx: EvaluationContext, power: PowerProfile) -> float:
    """Client joules for executing the whole history locally."""
    return power.compute_energy(ctx.total_cpu / ctx.client_speed)


def realized_client_energy(result, power: PowerProfile) -> float:
    """Client joules actually spent in an emulated run.

    ``result`` is an :class:`~repro.emulator.replay.EmulationResult`.
    Client CPU, GC pauses and monitoring burn at active draw; the rest
    of the wall clock (surrogate compute, link waits, migration) burns
    idle draw; the radio pays for every remote byte plus two messages
    per remote interaction and one per migration batch.
    """
    active = (result.cpu_time_client + result.gc_pause_time
              + result.monitoring_time)
    waiting = max(result.total_time - active, 0.0)
    radio_bytes = result.remote_bytes + result.migration_bytes
    radio_messages = 2 * result.remote_interactions + len(result.offloads)
    return power.run_energy(active, waiting, radio_bytes, radio_messages)


class EnergyPartitionPolicy(PartitionPolicy):
    """Minimise predicted client energy (the airplane-flight policy).

    ``min_saving_fraction`` demands at least that fractional battery
    saving before offloading is considered beneficial.
    """

    name = "energy-min-client-joules"

    def __init__(self, power: PowerProfile = JORNADA_POWER,
                 min_saving_fraction: float = 0.0) -> None:
        if not 0.0 <= min_saving_fraction < 1.0:
            raise ConfigurationError(
                "min_saving_fraction must be in [0, 1)"
            )
        self.power = power
        self.min_saving_fraction = min_saving_fraction

    def evaluate(
        self, candidates: List[CandidatePartition], ctx: EvaluationContext
    ) -> PolicyDecision:
        offloading = [
            c for c in candidates
            if c.offloads_anything and c.surrogate_cpu > 0
        ]
        if not offloading:
            raise NoBeneficialPartitionError(
                "no candidate moves any computation"
            )
        baseline = local_energy(ctx, self.power)
        best = min(
            offloading,
            key=lambda c: predict_client_energy(c, ctx, self.power),
        )
        predicted = predict_client_energy(best, ctx, self.power)
        if predicted >= baseline * (1.0 - self.min_saving_fraction):
            raise NoBeneficialPartitionError(
                f"best candidate predicts {predicted:.1f}J vs "
                f"{baseline:.1f}J locally"
            )
        bandwidth = best.cut_bytes / ctx.elapsed if ctx.elapsed > 0 else 0.0
        return PolicyDecision(
            candidate=best,
            policy_name=self.name,
            predicted_bandwidth=bandwidth,
            predicted_time=predict_completion_time(best, ctx),
            original_time=ctx.total_cpu / ctx.client_speed,
        )
