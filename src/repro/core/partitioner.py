"""The partitioning module: candidates + policy = decision.

Ties the modified MINCUT candidate generator to a partitioning policy
and wraps the outcome in a :class:`PartitionDecision`, including the
wall-clock cost of computing it (the paper reports ~0.1 s on a 600 MHz
Pentium for JavaNote's 134-class graph).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import NoBeneficialPartitionError
from . import flatgraph
from .graph import ExecutionGraph, GraphDelta
from .hints import contract_graph, expand_nodes
from .mincut import CandidatePartition, WarmStartState, generate_candidates
from .policy import (
    EvaluationContext,
    PartitionPolicy,
    PolicyDecision,
    PolicyEvaluationCache,
    evaluate_chain_with_cache,
    evaluate_with_cache,
)

#: Run candidate generation on the flat CSR core by default; the legacy
#: string-keyed generator stays available behind ``use_flat=False`` (it
#: is the parity oracle, and the fallback for graphs the flat core
#: cannot represent, e.g. negative edge weights).
USE_FLAT_DEFAULT = True


@dataclass(frozen=True)
class PartitionDecision:
    """The outcome of one partitioning attempt.

    ``beneficial`` is False when the policy refused every candidate (the
    platform then continues running locally — the paper's Biomer case).
    ``warm_start`` and ``policy_cache_hit`` record whether an
    incremental session served this attempt from its warm-started
    candidate generator and its policy-evaluation memo respectively.
    """

    beneficial: bool
    offload_nodes: FrozenSet[str]
    client_nodes: FrozenSet[str]
    cut_bytes: int
    cut_count: int
    freed_bytes: int
    predicted_bandwidth: float
    candidates_evaluated: int
    compute_seconds: float
    policy_name: str
    predicted_time: Optional[float] = None
    original_time: Optional[float] = None
    refusal_reason: Optional[str] = None
    warm_start: bool = False
    policy_cache_hit: bool = False

    @classmethod
    def refusal(
        cls, reason: str, candidates_evaluated: int, compute_seconds: float,
        policy_name: str,
    ) -> "PartitionDecision":
        return cls(
            beneficial=False,
            offload_nodes=frozenset(),
            client_nodes=frozenset(),
            cut_bytes=0,
            cut_count=0,
            freed_bytes=0,
            predicted_bandwidth=0.0,
            candidates_evaluated=candidates_evaluated,
            compute_seconds=compute_seconds,
            policy_name=policy_name,
            refusal_reason=reason,
        )


class Partitioner:
    """Runs the heuristic and evaluates the candidates under a policy.

    Optional :class:`~repro.core.hints.PlacementHints` are honoured by
    extending the pinned set (``pin_local``) and by contracting each
    ``keep_together`` group into one supernode before candidate
    generation, so no candidate can split a semantic component.
    """

    def __init__(
        self,
        policy: PartitionPolicy,
        hints=None,
        use_flat: Optional[bool] = None,
    ) -> None:
        self.policy = policy
        self.hints = hints
        self.use_flat = USE_FLAT_DEFAULT if use_flat is None else use_flat

    def _prepare(
        self, graph: ExecutionGraph, pinned: List[str]
    ) -> Tuple[ExecutionGraph, List[str], Dict[str, FrozenSet[str]]]:
        """Apply hints: extend the pinned set, contract hint groups."""
        expansion: Dict[str, FrozenSet[str]] = {}
        if self.hints is not None:
            pinned = pinned + list(self.hints.pin_local)
            if self.hints.has_groups:
                graph, expansion = contract_graph(
                    graph, self.hints.keep_together
                )
                # A group containing a pinned member is pinned whole.
                pinned = [
                    next((supernode
                          for supernode, members in expansion.items()
                          if node in members), node)
                    for node in pinned
                ]
        return graph, pinned, expansion

    def partition(
        self,
        graph: ExecutionGraph,
        pinned: Iterable[str],
        ctx: EvaluationContext,
    ) -> PartitionDecision:
        """Attempt a partitioning; never raises on policy refusal."""
        started = time.perf_counter()  # detlint: allow - reported compute cost
        graph, pinned, expansion = self._prepare(graph, list(pinned))
        fg = flatgraph.snapshot(graph) if self.use_flat else None
        try:
            if fg is not None:
                chain = fg.generate_chain(pinned)
                evaluated = chain.k
                decision = self.policy.evaluate_chain(chain, ctx)
            else:
                candidates = generate_candidates(graph, pinned)
                evaluated = len(candidates)
                decision = self.policy.evaluate(candidates, ctx)
        except NoBeneficialPartitionError as refusal:
            return PartitionDecision.refusal(
                reason=str(refusal),
                candidates_evaluated=evaluated,
                compute_seconds=time.perf_counter() - started,  # detlint: allow
                policy_name=self.policy.name,
            )
        accepted = self._accept(decision, evaluated, started)
        if expansion:
            accepted = replace(
                accepted,
                offload_nodes=expand_nodes(accepted.offload_nodes,
                                           expansion),
                client_nodes=expand_nodes(accepted.client_nodes,
                                          expansion),
            )
        return accepted

    def _accept(
        self,
        decision: PolicyDecision,
        candidates_evaluated: int,
        started: float,
    ) -> PartitionDecision:
        candidate = decision.candidate
        return PartitionDecision(
            beneficial=True,
            offload_nodes=candidate.surrogate_nodes,
            client_nodes=candidate.client_nodes,
            cut_bytes=candidate.cut_bytes,
            cut_count=candidate.cut_count,
            freed_bytes=candidate.surrogate_memory,
            predicted_bandwidth=decision.predicted_bandwidth,
            candidates_evaluated=candidates_evaluated,
            compute_seconds=time.perf_counter() - started,  # detlint: allow
            policy_name=decision.policy_name,
            predicted_time=decision.predicted_time,
            original_time=decision.original_time,
        )


@dataclass
class ReevalStats:
    """Counters for one incremental re-evaluation session.

    ``reuse_hits`` counts epochs where the graph was untouched since the
    previous attempt and the prior candidate list was reused outright;
    ``warm_hits`` counts epochs served by the warm-started generator;
    ``cold_runs`` counts full cold candidate generations.

    On the flat CSR path every cold epoch also increments exactly one
    fallback-taxonomy counter naming *why* it ran cold: ``not_ready``
    (no usable warm state — first epoch, oversized delta, changed
    pinned set, or a freshly compiled snapshot), ``node_churn`` (the
    node set changed, so the interning table was rebuilt), ``seed_change``
    (same nodes, different effective seed), ``shrunk_winner`` (a
    recorded winner's connectivity shrank below its recorded value, so
    local repair could not certify the order), ``budget`` (the repair
    region outgrew its adjacency budget), and ``forced`` (``force_cold``
    sessions and hint-contraction epochs).  ``repair_epochs`` counts
    warm hits that actually had to repair the move log (with
    ``repair_splices``/``repair_promotions`` accumulating how much);
    warm hits beyond those merely revalidated the recorded order.
    """

    epochs: int = 0
    cold_runs: int = 0
    warm_hits: int = 0
    reuse_hits: int = 0
    cache_hits: int = 0
    contraction_reuses: int = 0
    repair_epochs: int = 0
    repair_splices: int = 0
    repair_promotions: int = 0
    fallback_not_ready: int = 0
    fallback_node_churn: int = 0
    fallback_seed_change: int = 0
    fallback_shrunk_winner: int = 0
    fallback_budget: int = 0
    fallback_forced: int = 0
    last_dirty_fraction: float = 0.0
    last_epoch_seconds: float = 0.0
    total_epoch_seconds: float = 0.0


class IncrementalPartitioner:
    """A partitioning session that exploits work from previous epochs.

    Wraps a :class:`Partitioner` and keeps three pieces of state between
    ``partition()`` calls:

    * a :class:`~repro.core.mincut.WarmStartState` so candidate
      generation can be re-seeded from the previous run when the graph
      delta is small (dirty fraction at most ``warm_threshold``),
    * the previous candidate list, reused outright when the graph,
      pinned set, and hints are all unchanged,
    * a :class:`~repro.core.policy.PolicyEvaluationCache` memoising the
      policy's *selection* across epochs.

    The caller supplies the :class:`~repro.core.graph.GraphDelta`
    separating this epoch's graph from the previous one (e.g. the
    monitor's ``last_snapshot_delta``); passing ``delta=None`` makes the
    session drain the graph's dirty sets itself, which is only valid
    when no other consumer (such as a copy-on-write snapshotter) drains
    the same graph.
    """

    def __init__(
        self,
        partitioner: Partitioner,
        *,
        warm_threshold: float = 0.25,
        cache_size: int = 256,
        force_cold: bool = False,
    ) -> None:
        self.base = partitioner
        self.warm_threshold = warm_threshold
        self.force_cold = force_cold
        self.stats = ReevalStats()
        self._warm = WarmStartState()
        self._fg: Optional[flatgraph.FlatGraph] = None
        self._fwarm = flatgraph.FlatWarmState()
        self._cache = PolicyEvaluationCache(maxsize=cache_size)
        self._last_graph: Optional[ExecutionGraph] = None
        self._last_version: int = -1
        self._last_pinned_key: Optional[FrozenSet[str]] = None
        self._last_candidates: Optional[List[CandidatePartition]] = None
        self._last_chain: Optional[flatgraph.FlatChain] = None
        self._last_expansion: Dict[str, FrozenSet[str]] = {}

    @property
    def policy(self) -> PartitionPolicy:
        return self.base.policy

    def _generate(
        self,
        graph: ExecutionGraph,
        pinned: List[str],
        delta: GraphDelta,
    ):
        """Produce candidates, via reuse, warm start, or a cold run.

        Returns ``(payload, expansion, warm_used)`` where the payload is
        a :class:`~repro.core.flatgraph.FlatChain` on the flat path and
        a legacy candidate list otherwise.
        """
        pinned_key = frozenset(pinned)
        unchanged = (
            graph is self._last_graph
            and graph.version == self._last_version
            and delta.empty
            and pinned_key == self._last_pinned_key
            and (self._last_candidates is not None
                 or self._last_chain is not None)
        )
        hints = self.base.hints
        contracted = hints is not None and hints.has_groups
        if unchanged:
            self.stats.reuse_hits += 1
            if contracted:
                self.stats.contraction_reuses += 1
            payload = (self._last_chain if self._last_chain is not None
                       else self._last_candidates)
            return payload, self._last_expansion, False
        work_graph, eff_pinned, expansion = self.base._prepare(graph, pinned)
        warm_used = False
        payload = None
        if contracted:
            # Contraction rebuilds the graph wholesale; warm-start
            # bookkeeping does not survive it.  The cold run still goes
            # through the flat kernel when possible.
            if self.base.use_flat:
                fg = flatgraph.snapshot(work_graph)
                if fg is not None:
                    payload = fg.generate_chain(eff_pinned)
            if payload is None:
                payload = generate_candidates(work_graph, eff_pinned)
            self.stats.cold_runs += 1
            self.stats.fallback_forced += 1
        else:
            denominator = graph.node_count + graph.link_count
            dirty_fraction = (
                delta.size() / denominator if denominator else 1.0
            )
            self.stats.last_dirty_fraction = dirty_fraction
            if self.base.use_flat:
                payload, warm_used = self._generate_flat(
                    work_graph, eff_pinned, pinned_key, delta, dirty_fraction
                )
            if payload is None:
                use_warm = (
                    self._warm.ready
                    and not delta.empty
                    and dirty_fraction <= self.warm_threshold
                    and pinned_key == self._last_pinned_key
                )
                payload = generate_candidates(
                    work_graph,
                    eff_pinned,
                    warm=self._warm,
                    delta=delta if use_warm else None,
                )
                warm_used = self._warm.last_run_warm
                if warm_used:
                    self.stats.warm_hits += 1
                else:
                    self.stats.cold_runs += 1
        self._last_graph = graph
        self._last_version = graph.version
        self._last_pinned_key = pinned_key
        if isinstance(payload, flatgraph.FlatChain):
            self._last_chain = payload
            self._last_candidates = None
        else:
            self._last_candidates = payload
            self._last_chain = None
        self._last_expansion = expansion
        return payload, expansion, warm_used

    def _generate_flat(
        self,
        graph: ExecutionGraph,
        pinned: List[str],
        pinned_key: FrozenSet[str],
        delta: GraphDelta,
        dirty_fraction: float,
    ) -> Tuple[Optional["flatgraph.FlatChain"], bool]:
        """Flat-core epoch: sync the snapshot, repair or rerun cold.

        Returns ``(None, False)`` when the graph cannot be represented
        flatly at all; the caller then falls back to the legacy
        generator for this epoch.
        """
        reason = flatgraph.COLD_NOT_READY
        fg = self._fg
        fdelta = None
        if fg is not None and delta.empty \
                and graph.version != fg.synced_version:
            # An empty delta cannot explain the version drift — some
            # other consumer drained this graph's dirty sets.  The
            # snapshot can no longer be trusted; rebuild it.
            fg = None
        if fg is not None:
            fdelta = fg.sync(graph, delta)
            if fdelta is None:
                fg = None
                reason = flatgraph.COLD_NODE_CHURN
        if fg is None:
            fg = flatgraph.FlatGraph.try_compile(graph)
            self._fg = fg
            self._fwarm = flatgraph.FlatWarmState()
            if fg is None:
                return None, False
        warm_viable = (
            fdelta is not None
            and self._fwarm.ready
            and not delta.empty
            and dirty_fraction <= self.warm_threshold
            and pinned_key == self._last_pinned_key
        )
        if warm_viable:
            chain, fail, splices, promotions = fg.repair_chain(
                self._fwarm, fdelta, pinned
            )
            if chain is not None:
                self.stats.warm_hits += 1
                if splices or promotions:
                    self.stats.repair_epochs += 1
                    self.stats.repair_splices += splices
                    self.stats.repair_promotions += promotions
                return chain, True
            reason = fail
        chain = fg.generate_chain(pinned, warm=self._fwarm)
        self.stats.cold_runs += 1
        self._count_fallback(reason)
        return chain, False

    def _count_fallback(self, reason: Optional[str]) -> None:
        stats = self.stats
        if reason == flatgraph.COLD_NODE_CHURN:
            stats.fallback_node_churn += 1
        elif reason == flatgraph.COLD_SEED_CHANGE:
            stats.fallback_seed_change += 1
        elif reason == flatgraph.COLD_SHRUNK_WINNER:
            stats.fallback_shrunk_winner += 1
        elif reason == flatgraph.COLD_BUDGET:
            stats.fallback_budget += 1
        else:
            stats.fallback_not_ready += 1

    def partition(
        self,
        graph: ExecutionGraph,
        pinned: Iterable[str],
        ctx: EvaluationContext,
        delta: Optional[GraphDelta] = None,
    ) -> PartitionDecision:
        """One re-evaluation epoch; never raises on policy refusal."""
        started = time.perf_counter()  # detlint: allow - reported epoch cost
        self.stats.epochs += 1
        if delta is None:
            delta = graph.drain_dirty()
        if self.force_cold:
            decision = self.base.partition(graph, pinned, ctx)
            self.stats.cold_runs += 1
            self.stats.fallback_forced += 1
            self._record_epoch(started)
            return decision
        payload, expansion, warm_used = self._generate(
            graph, list(pinned), delta
        )
        is_chain = isinstance(payload, flatgraph.FlatChain)
        evaluated = payload.k if is_chain else len(payload)
        hits_before = self._cache.hits
        try:
            if is_chain:
                policy_decision, cache_hit = evaluate_chain_with_cache(
                    self.base.policy, payload, ctx, self._cache
                )
            else:
                policy_decision, cache_hit = evaluate_with_cache(
                    self.base.policy, payload, ctx, self._cache
                )
        except NoBeneficialPartitionError as refusal:
            cache_hit = self._cache.hits > hits_before
            if cache_hit:
                self.stats.cache_hits += 1
            self._record_epoch(started)
            return replace(
                PartitionDecision.refusal(
                    reason=str(refusal),
                    candidates_evaluated=evaluated,
                    compute_seconds=time.perf_counter() - started,  # detlint: allow
                    policy_name=self.base.policy.name,
                ),
                warm_start=warm_used,
                policy_cache_hit=cache_hit,
            )
        if cache_hit:
            self.stats.cache_hits += 1
        accepted = self.base._accept(policy_decision, evaluated, started)
        if expansion:
            accepted = replace(
                accepted,
                offload_nodes=expand_nodes(accepted.offload_nodes,
                                           expansion),
                client_nodes=expand_nodes(accepted.client_nodes,
                                          expansion),
            )
        self._record_epoch(started)
        return replace(
            accepted, warm_start=warm_used, policy_cache_hit=cache_hit
        )

    def _record_epoch(self, started: float) -> None:
        elapsed = time.perf_counter() - started  # detlint: allow - epoch cost
        self.stats.last_epoch_seconds = elapsed
        self.stats.total_epoch_seconds += elapsed
