"""The partitioning module: candidates + policy = decision.

Ties the modified MINCUT candidate generator to a partitioning policy
and wraps the outcome in a :class:`PartitionDecision`, including the
wall-clock cost of computing it (the paper reports ~0.1 s on a 600 MHz
Pentium for JavaNote's 134-class graph).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, List, Optional

from ..errors import NoBeneficialPartitionError
from .graph import ExecutionGraph
from .hints import contract_graph, expand_nodes
from .mincut import CandidatePartition, generate_candidates
from .policy import EvaluationContext, PartitionPolicy, PolicyDecision


@dataclass(frozen=True)
class PartitionDecision:
    """The outcome of one partitioning attempt.

    ``beneficial`` is False when the policy refused every candidate (the
    platform then continues running locally — the paper's Biomer case).
    """

    beneficial: bool
    offload_nodes: FrozenSet[str]
    client_nodes: FrozenSet[str]
    cut_bytes: int
    cut_count: int
    freed_bytes: int
    predicted_bandwidth: float
    candidates_evaluated: int
    compute_seconds: float
    policy_name: str
    predicted_time: Optional[float] = None
    original_time: Optional[float] = None
    refusal_reason: Optional[str] = None

    @classmethod
    def refusal(
        cls, reason: str, candidates_evaluated: int, compute_seconds: float,
        policy_name: str,
    ) -> "PartitionDecision":
        return cls(
            beneficial=False,
            offload_nodes=frozenset(),
            client_nodes=frozenset(),
            cut_bytes=0,
            cut_count=0,
            freed_bytes=0,
            predicted_bandwidth=0.0,
            candidates_evaluated=candidates_evaluated,
            compute_seconds=compute_seconds,
            policy_name=policy_name,
            refusal_reason=reason,
        )


class Partitioner:
    """Runs the heuristic and evaluates the candidates under a policy.

    Optional :class:`~repro.core.hints.PlacementHints` are honoured by
    extending the pinned set (``pin_local``) and by contracting each
    ``keep_together`` group into one supernode before candidate
    generation, so no candidate can split a semantic component.
    """

    def __init__(self, policy: PartitionPolicy, hints=None) -> None:
        self.policy = policy
        self.hints = hints

    def partition(
        self,
        graph: ExecutionGraph,
        pinned: Iterable[str],
        ctx: EvaluationContext,
    ) -> PartitionDecision:
        """Attempt a partitioning; never raises on policy refusal."""
        started = time.perf_counter()
        pinned = list(pinned)
        expansion = {}
        if self.hints is not None:
            pinned.extend(self.hints.pin_local)
            if self.hints.has_groups:
                graph, expansion = contract_graph(
                    graph, self.hints.keep_together
                )
                # A group containing a pinned member is pinned whole.
                pinned = [
                    next((supernode
                          for supernode, members in expansion.items()
                          if node in members), node)
                    for node in pinned
                ]
        candidates = generate_candidates(graph, pinned)
        try:
            decision = self.policy.evaluate(candidates, ctx)
        except NoBeneficialPartitionError as refusal:
            return PartitionDecision.refusal(
                reason=str(refusal),
                candidates_evaluated=len(candidates),
                compute_seconds=time.perf_counter() - started,
                policy_name=self.policy.name,
            )
        accepted = self._accept(decision, candidates, started)
        if expansion:
            accepted = replace(
                accepted,
                offload_nodes=expand_nodes(accepted.offload_nodes,
                                           expansion),
                client_nodes=expand_nodes(accepted.client_nodes,
                                          expansion),
            )
        return accepted

    def _accept(
        self,
        decision: PolicyDecision,
        candidates: List[CandidatePartition],
        started: float,
    ) -> PartitionDecision:
        candidate = decision.candidate
        return PartitionDecision(
            beneficial=True,
            offload_nodes=candidate.surrogate_nodes,
            client_nodes=candidate.client_nodes,
            cut_bytes=candidate.cut_bytes,
            cut_count=candidate.cut_count,
            freed_bytes=candidate.surrogate_memory,
            predicted_bandwidth=decision.predicted_bandwidth,
            candidates_evaluated=len(candidates),
            compute_seconds=time.perf_counter() - started,
            policy_name=decision.policy_name,
            predicted_time=decision.predicted_time,
            original_time=decision.original_time,
        )
