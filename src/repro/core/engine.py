"""The offloading engine: trigger → partition → migrate.

This is the control loop of Figure 1 in the paper: the platform monitors
execution and resources; when a trigger event occurs it analyses the
collected execution graph, decides whether offloading would be
beneficial, and if so migrates the selected components to the surrogate.
Execution then continues and monitoring resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional

from ..errors import MigrationError
from ..vm.gc import GCReport
from ..vm.hooks import ExecutionListener
from .hints import ColdStartSeed
from .monitor import ExecutionMonitor
from .partitioner import (
    IncrementalPartitioner,
    PartitionDecision,
    Partitioner,
    ReevalStats,
)
from .policy import EvaluationContext, MemoryTrigger


@dataclass(frozen=True)
class OffloadEvent:
    """One completed or refused offloading attempt."""

    time: float
    decision: PartitionDecision
    migrated_bytes: int = 0
    migration_seconds: float = 0.0

    @property
    def performed(self) -> bool:
        return self.decision.beneficial


@dataclass
class MigrationOutcome:
    """What the platform reports back after applying a placement."""

    moved_bytes: int = 0
    moved_objects: int = 0
    seconds: float = 0.0


#: Callback through which the engine asks the platform to realise a
#: placement.  Receives the set of graph nodes to host on the surrogate.
MigrateFn = Callable[[FrozenSet[str]], MigrationOutcome]


class OffloadingEngine(ExecutionListener):
    """Watches GC reports on the client and orchestrates offloading."""

    def __init__(
        self,
        monitor: ExecutionMonitor,
        partitioner: Partitioner,
        trigger: MemoryTrigger,
        pinned_provider: Callable[[], List[str]],
        context_provider: Callable[[], EvaluationContext],
        migrate: MigrateFn,
        now: Callable[[], float],
        client_site: str = "client",
        single_shot: bool = True,
        reevaluate_every: Optional[float] = None,
        warm_threshold: float = 0.25,
        force_cold: bool = False,
    ) -> None:
        self.monitor = monitor
        self._warm_threshold = warm_threshold
        self._force_cold = force_cold
        # The ``partitioner`` setter builds the incremental session.
        self.partitioner = partitioner
        self.trigger = trigger
        self._pinned_provider = pinned_provider
        self._context_provider = context_provider
        self._migrate = migrate
        self._now = now
        self.client_site = client_site
        self.single_shot = single_shot
        #: Global-placement mode (paper section 8): once the first
        #: offload has happened, re-evaluate the partitioning every
        #: ``reevaluate_every`` seconds of virtual time.  Re-evaluation
        #: applies the *whole* placement, so classes whose coupling has
        #: shifted towards the client migrate back (reverse migration).
        self.reevaluate_every = reevaluate_every
        self._last_reevaluation = 0.0
        self.events: List[OffloadEvent] = []
        self.offload_count = 0
        self.refusal_count = 0
        self._attempting = False
        self._suspended = False

    @property
    def partitioner(self) -> Partitioner:
        return self.session.base

    @partitioner.setter
    def partitioner(self, partitioner: Partitioner) -> None:
        #: Incremental re-evaluation session: carries warm-start state,
        #: the previous candidate list, and the policy-evaluation memo
        #: across attempts.  ``force_cold=True`` is the escape hatch
        #: that makes every attempt a full cold run.  Replacing the
        #: partitioner starts a fresh session — stale warm state must
        #: not leak across policies.
        self.session = IncrementalPartitioner(
            partitioner,
            warm_threshold=self._warm_threshold,
            force_cold=self._force_cold,
        )

    # -- cold start ------------------------------------------------------------

    def apply_cold_start(self, seed: Optional[ColdStartSeed]) -> None:
        """Install ahead-of-time placement knowledge before execution.

        The static analyzer (``repro.analysis``) predicts the
        interaction graph and placement hints without running any code;
        this folds both into the engine so the *first* partitioning
        attempt works from predicted structure instead of an empty
        graph.  Explicitly configured partitioner hints take precedence
        over the seed's — a developer's ``pin_local`` should not be
        silently replaced by inferred ones.
        """
        if seed is None or seed.empty:
            return
        if seed.profile is not None:
            self.monitor.merge_profile(seed.profile)
        if seed.hints is not None and self.partitioner.hints is None:
            base = self.partitioner
            base.hints = seed.hints
            # Reassigning rebuilds the incremental session, so no warm
            # state predating the hints survives.
            self.partitioner = base

    # -- hook ------------------------------------------------------------

    def suspend(self) -> None:
        """Surrogate lost: stop proposing placements until rediscovery.

        Monitoring continues (the graph keeps growing, which is what
        makes the post-rediscovery warm start useful); only the control
        loop's trigger path is parked.
        """
        self._suspended = True

    def resume(self) -> None:
        """A (replacement) surrogate is reachable again."""
        self._suspended = False

    @property
    def suspended(self) -> bool:
        return self._suspended

    def on_gc_report(self, report: GCReport, site: str) -> None:
        if self._attempting:
            # GC cycles caused by the migration itself must not re-enter.
            return
        if self._suspended:
            # Client-only degraded mode: there is no surrogate to
            # offload to, so trigger events are observed but not acted on.
            return
        if self.offload_count > 0 and self.reevaluate_every is not None:
            # Periodic re-evaluation is clock-driven and fires off any
            # site's collection activity — after an offload, allocation
            # (and hence GC) may be happening only on the surrogate.
            if self._now() - self._last_reevaluation >= self.reevaluate_every:
                self._last_reevaluation = self._now()
                self.attempt(revert_on_refusal=True)
            return
        if site != self.client_site:
            return
        if self.single_shot and self.offload_count > 0:
            return
        if self.trigger.observe(report):
            if self.offload_count == 0:
                self._last_reevaluation = self._now()
            self.attempt()

    # -- the control loop body ------------------------------------------------

    def attempt(self, revert_on_refusal: bool = False) -> OffloadEvent:
        """Run one partitioning attempt and apply it if beneficial.

        In global-placement mode (``revert_on_refusal``), a refusal
        means "no partitioning is currently beneficial" — so the engine
        reverts to the all-local placement, pulling offloaded objects
        back to the client when they fit (the paper's section 8
        "moving objects from the surrogate to the client device").
        """
        self._attempting = True
        try:
            # The copy-on-write snapshot drains the graph's dirty sets
            # and leaves the delta on the monitor for the session.
            snapshot = self.monitor.snapshot()
            decision = self.session.partition(
                snapshot,
                self._pinned_provider(),
                self._context_provider(),
                delta=self.monitor.last_snapshot_delta,
            )
            migrated_bytes = 0
            migration_seconds = 0.0
            if decision.beneficial:
                outcome = self._migrate(decision.offload_nodes)
                migrated_bytes = outcome.moved_bytes
                migration_seconds = outcome.seconds
                self.offload_count += 1
            else:
                self.refusal_count += 1
                self.trigger.reset()
                if revert_on_refusal:
                    try:
                        outcome = self._migrate(frozenset())
                    except MigrationError:
                        # The client cannot host the state right now;
                        # keep the current placement and try again at
                        # the next re-evaluation.
                        outcome = MigrationOutcome()
                    migrated_bytes = outcome.moved_bytes
                    migration_seconds = outcome.seconds
            event = OffloadEvent(
                time=self._now(),
                decision=decision,
                migrated_bytes=migrated_bytes,
                migration_seconds=migration_seconds,
            )
            self.events.append(event)
            return event
        finally:
            self._attempting = False

    # -- reporting ------------------------------------------------------------

    @property
    def reeval_stats(self) -> ReevalStats:
        """Epoch counters for the incremental re-evaluation session."""
        return self.session.stats

    @property
    def last_event(self) -> Optional[OffloadEvent]:
        return self.events[-1] if self.events else None

    @property
    def performed_events(self) -> List[OffloadEvent]:
        return [e for e in self.events if e.performed]
