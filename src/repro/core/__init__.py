"""The AIDE modules: monitoring, partitioning, and offloading control."""

from .energy import (
    EnergyPartitionPolicy,
    JORNADA_POWER,
    PowerProfile,
    local_energy,
    predict_client_energy,
    realized_client_energy,
)
from .engine import MigrationOutcome, OffloadEvent, OffloadingEngine
from .hints import (
    PlacementHints,
    contract_graph,
    expand_nodes,
    interaction_profile,
)
from .graph import EdgeStats, ExecutionGraph, NodeStats, node_class, object_node_id
from .mincut import (
    CandidatePartition,
    generate_candidates,
    min_bandwidth_candidate,
    stoer_wagner,
)
from .monitor import ExecutionMonitor, MonitorCounters, RemoteCounters, ResourceMonitor
from .partitioner import PartitionDecision, Partitioner
from .policy import (
    BandwidthTrendTrigger,
    BestEffortCpuPolicy,
    CombinedPartitionPolicy,
    CpuPartitionPolicy,
    EvaluationContext,
    MemoryPartitionPolicy,
    MemoryTrigger,
    OffloadPolicy,
    PartitionPolicy,
    PeriodicTrigger,
    PolicyDecision,
    TriggerConfig,
    policy_sweep,
    predict_compute_only,
    predict_completion_time,
)

__all__ = [
    "BandwidthTrendTrigger",
    "BestEffortCpuPolicy",
    "CandidatePartition",
    "CombinedPartitionPolicy",
    "CpuPartitionPolicy",
    "EdgeStats",
    "EnergyPartitionPolicy",
    "EvaluationContext",
    "ExecutionGraph",
    "ExecutionMonitor",
    "MemoryPartitionPolicy",
    "MemoryTrigger",
    "MigrationOutcome",
    "MonitorCounters",
    "NodeStats",
    "OffloadEvent",
    "OffloadPolicy",
    "OffloadingEngine",
    "PartitionDecision",
    "PartitionPolicy",
    "Partitioner",
    "PeriodicTrigger",
    "PlacementHints",
    "PolicyDecision",
    "PowerProfile",
    "JORNADA_POWER",
    "RemoteCounters",
    "ResourceMonitor",
    "TriggerConfig",
    "contract_graph",
    "expand_nodes",
    "generate_candidates",
    "local_energy",
    "predict_client_energy",
    "realized_client_energy",
    "interaction_profile",
    "min_bandwidth_candidate",
    "node_class",
    "object_node_id",
    "policy_sweep",
    "predict_completion_time",
    "predict_compute_only",
    "stoer_wagner",
]
