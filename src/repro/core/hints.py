"""Semantic placement hints and profile reuse (paper section 8).

The paper plans to "consider the benefits of exploiting additional
information about the applications such as hints from users and
developers, previously gathered profiling information, and high-level
components like JavaBeans".  Two mechanisms implement that here:

* :class:`PlacementHints` — a developer can pin classes to the client
  (``pin_local``) and declare component groups that must stay together
  (``keep_together``, the JavaBeans-style semantic unit).  Groups are
  honoured by *contracting* each group into one supernode before the
  MINCUT heuristic runs, so no candidate can split it.
* :func:`interaction_profile` — a previously gathered execution graph,
  stripped to its durable parts (interaction edges and CPU totals, not
  the stale live-memory numbers), suitable for warm-starting the
  monitor of a later run so the first partitioning decision starts from
  real history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import ConfigurationError
from .graph import ExecutionGraph


@dataclass(frozen=True)
class PlacementHints:
    """Developer/user hints consulted by the partitioner."""

    #: Classes that must never leave the client, regardless of natives.
    pin_local: FrozenSet[str] = frozenset()
    #: Groups of classes that must be placed on the same site.
    keep_together: Tuple[FrozenSet[str], ...] = ()

    def __post_init__(self) -> None:
        seen: set = set()
        for group in self.keep_together:
            if len(group) < 2:
                raise ConfigurationError(
                    "keep_together groups need at least two members"
                )
            overlap = seen & set(group)
            if overlap:
                raise ConfigurationError(
                    f"classes {sorted(overlap)} appear in multiple groups"
                )
            seen |= set(group)

    @property
    def has_groups(self) -> bool:
        return bool(self.keep_together)


@dataclass(frozen=True)
class ColdStartSeed:
    """Ahead-of-time placement knowledge for a first partitioning.

    Produced by the static analyzer
    (:func:`repro.analysis.staticgraph.analyze_program`) — or assembled
    by hand from a previous run's profile — and consumed by
    :meth:`repro.core.engine.OffloadingEngine.apply_cold_start` and the
    emulator's ``EmulatorConfig.cold_start``.  The ``profile`` seeds the
    monitor's execution graph with predicted interaction structure so
    the very first MINCUT does not run on an empty graph; the ``hints``
    carry advisory pins and co-location groups into the partitioner.
    """

    hints: Optional[PlacementHints] = None
    profile: Optional[ExecutionGraph] = None
    #: Provenance marker, e.g. ``"static-analysis:dia"``.
    source: str = "static-analysis"
    #: Predicted bytes crossing the pinned/offloadable boundary, from
    #: the interprocedural dataflow pass.  Consumed by the fleet placer
    #: as a per-client load estimate before any trace is replayed.
    predicted_cross_traffic: Optional[float] = None

    @property
    def empty(self) -> bool:
        return self.hints is None and self.profile is None


def group_node_id(index: int, members: FrozenSet[str]) -> str:
    """Stable id for a contracted group supernode."""
    return f"<group:{index}:{min(members)}>"


def contract_graph(
    graph: ExecutionGraph, groups: Tuple[FrozenSet[str], ...]
) -> Tuple[ExecutionGraph, Dict[str, FrozenSet[str]]]:
    """Merge each hint group present in the graph into one supernode.

    Returns the contracted graph and an expansion map from supernode id
    to the member nodes it replaced.  Edges between two members of the
    same group disappear (they can never be cut); edges from a member
    to the outside re-attach to the supernode.
    """
    alias: Dict[str, str] = {}
    expansion: Dict[str, FrozenSet[str]] = {}
    for index, group in enumerate(groups):
        members = frozenset(m for m in group if graph.has_node(m))
        if len(members) < 2:
            continue
        supernode = group_node_id(index, members)
        expansion[supernode] = members
        for member in members:
            alias[member] = supernode

    contracted = ExecutionGraph()
    for node_id in graph.nodes():
        target = alias.get(node_id, node_id)
        stats = graph.node(node_id)
        merged = contracted.ensure_node(target)
        merged.memory_bytes += stats.memory_bytes
        merged.cpu_seconds += stats.cpu_seconds
        merged.live_objects += stats.live_objects
        merged.created_objects += stats.created_objects
    for (a, b), edge in graph.edges():
        target_a = alias.get(a, a)
        target_b = alias.get(b, b)
        if target_a == target_b:
            continue
        contracted.record_interaction(target_a, target_b, edge.bytes,
                                      count=edge.count)
    return contracted, expansion


def expand_nodes(
    nodes: FrozenSet[str], expansion: Dict[str, FrozenSet[str]]
) -> FrozenSet[str]:
    """Replace supernodes with their member nodes."""
    expanded: List[str] = []
    for node in nodes:
        members = expansion.get(node)
        if members is None:
            expanded.append(node)
        else:
            expanded.extend(members)
    return frozenset(expanded)


def interaction_profile(graph: ExecutionGraph) -> ExecutionGraph:
    """A reusable profile: interactions and CPU, without live memory.

    Live-memory annotations describe one run's heap at one moment and
    would mislead a later run, so they are zeroed; the durable signal —
    which classes talk to which, how much, and where time is spent — is
    kept.
    """
    profile = ExecutionGraph()
    for node_id in graph.nodes():
        stats = graph.node(node_id)
        node = profile.ensure_node(node_id)
        node.cpu_seconds = stats.cpu_seconds
    for (a, b), edge in graph.edges():
        profile.record_interaction(a, b, edge.bytes, count=edge.count)
    return profile
