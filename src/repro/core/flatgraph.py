"""Flat integer-indexed CSR snapshot of the execution graph.

The MINCUT candidate generator in :mod:`repro.core.mincut` runs on the
string-keyed dict-of-dicts :class:`~repro.core.graph.ExecutionGraph`.
That shape is right for the monitor (incremental point updates, stable
node identities) but wrong for the control-plane hot path: one candidate
chain walks every edge several times through hash lookups and tuple
heap keys.  This module compiles the graph into the same stdlib-``array``
SoA style the emulator's columnar replay core uses:

* a **node interning table** (``names``/``idx``/``rank``) mapping node
  ids to dense integer indices, reused across epochs — an index assigned
  at compile time stays valid until the node set itself changes;
* **CSR adjacency** (``indptr``/``adj``/``eidx``) plus per-node
  memory/CPU columns and per-edge byte/count columns;
* a derived **kernel cache**: per-node rows of ``(neighbor, inc)`` pairs
  where ``inc`` is the edge's packed connectivity increment (below), and
  ``rowtot`` — the per-node sum of its packed increments.

Packed connectivity keys
------------------------

The legacy generator orders surrogate nodes by the tuple
``(conn_bytes, conn_count, node_id)`` with ties broken towards the
*largest* id.  Here the whole tuple is packed into one integer::

    key(v) = (conn_bytes * CB + conn_count) * NB + rank(v)

where ``rank(v)`` is the node id's lexicographic rank, ``NB`` is a
power of two above the node count and ``CB`` a power of two above twice
the graph's total interaction count.  Packed keys compare exactly like
the legacy tuples (ranks are distinct, so ties never reach doubt), a
relaxation is a single integer add of the edge's pre-packed increment,
and a lazy-deletion heap of plain ints replaces the tuple heap.  The
factor-of-two slack in ``CB`` means interaction counts can keep growing
across epochs without re-deriving every increment; the basis is doubled
(amortised O(1)) only when the total count actually reaches ``CB``.

The selection loop also uses the row-total identity: moving ``v`` with
current packed connectivity ``key`` changes the packed cut by
``rowtot[v] - 2 * (key - key % NB)`` (its client-side edges leave the
cut, the rest join), so the inner loop never touches per-edge cut sums.

Bounded local repair
--------------------

The legacy warm start is all-or-nothing: any shrinking edge or greedy
order flip abandons the whole move log and reruns cold.  Here the move
log is *repaired* instead.  A single sweep replays the previous order
while exactly tracking the packed connectivity of the **perturbed set**
— endpoints of changed edges, plus (lazily) every neighbor of a node
that moves out of its old position.  At each step the recorded winner
is compared against the best tracked competitor; a flip splices the
overtaking node into the order and promotes its untouched neighbors
into the tracked set (their old recorded values can no longer be
trusted relative to the displaced segment).  Untracked nodes keep
exactly their recorded connectivities — every node whose connectivity
could have changed is tracked by construction — so the sweep emits the
same order and statistics a cold run would.  The sweep falls back cold
only when

* a recorded winner's connectivity *shrank* below its recorded value
  (untracked dominance can no longer be certified cheaply),
* the repair region exceeds its budget (total promoted adjacency over
  ``REPAIR_BUDGET_FRACTION`` of the half-edge count), or
* the node set or seed changed (index interning must be rebuilt).

Each fallback is reported with a reason so the session can expose a
fallback taxonomy in its :class:`~repro.core.partitioner.ReevalStats`.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Tuple
from weakref import WeakKeyDictionary

from ..errors import PartitioningError
from .graph import ExecutionGraph, GraphDelta
from .mincut import CandidatePartition, _MoveLog

#: Repair gives up (and the session falls back cold) once the adjacency
#: it has re-examined exceeds this fraction of the half-edge count...
REPAIR_BUDGET_FRACTION = 0.25
#: ...but never for less than this much absolute work, so tiny graphs
#: are always repairable end to end.
REPAIR_BUDGET_MIN = 512

# Cold-fallback taxonomy reasons (ReevalStats counts one per cold epoch).
COLD_NOT_READY = "not-ready"
COLD_NODE_CHURN = "node-churn"
COLD_SEED_CHANGE = "seed-change"
COLD_SHRUNK_WINNER = "shrunk-winner"
COLD_BUDGET = "budget"
COLD_FORCED = "forced"


def _pow2_at_least(value: int) -> int:
    """Smallest power of two >= ``value`` (and >= 2)."""
    return 1 << max(1, (value - 1).bit_length())


class FlatDelta(NamedTuple):
    """One epoch's graph delta, lowered onto the flat snapshot.

    ``edge_changes`` holds ``(a_idx, b_idx, dbytes, dcount)`` per changed
    (or newly appeared) edge; ``node_changes`` holds
    ``(idx, dmemory, dcpu)``.  ``rebased`` is True when the packed-key
    basis had to be doubled (recorded packed selections must be
    re-encoded before reuse).
    """

    edge_changes: List[Tuple[int, int, int, int]]
    node_changes: List[Tuple[int, int, float]]
    rebased: bool


class FlatWarmState:
    """Index-space outcome of one candidate-generation run.

    The flat equivalent of :class:`repro.core.mincut.WarmStartState`:
    everything is keyed by interned node index, selections are stored as
    packed keys (with the basis they were packed under, so a basis
    doubling can re-encode them in O(k)), and the per-candidate
    statistics columns are plain Python lists ready for difference-free
    exact repair.
    """

    __slots__ = (
        "ready",
        "seed_key",
        "order",
        "pos",
        "sel_packed",
        "cb",
        "nb",
        "cut_bytes0",
        "cut_count0",
    )

    def __init__(self) -> None:
        self.ready = False
        self.seed_key: FrozenSet[str] = frozenset()
        #: Move order over node indices; ``order[j]`` joined the client
        #: at candidate index ``j + 1`` (the final entry never moved).
        self.order: List[int] = []
        #: idx -> candidate index from which the node is client-side
        #: (0 for seed members, ``len(order)`` for the never-moved tail).
        self.pos: List[int] = []
        #: Packed connectivity of the selection at each of the
        #: ``len(order) - 1`` steps, under the (cb, nb) basis below.
        self.sel_packed: List[int] = []
        self.cb = 0
        self.nb = 0
        # Candidate-0 cut statistics (the seed cut).  Repair patches
        # these with the delta's seed-crossing edges and rebuilds every
        # later candidate from scratch, so the full statistics columns
        # need not be retained here.
        self.cut_bytes0 = 0
        self.cut_count0 = 0


class FlatChain:
    """One candidate chain in columnar form.

    Stores the seed, the move order (as interned indices) and the raw
    accumulator arrays from the generation kernel; the five
    per-candidate statistics columns are decoded from them lazily, one
    cached property each, so a policy that scans only (say) memory and
    cut bytes never pays for decoding CPU or cut-count columns.
    Candidate objects — with their O(V) frozenset node sets — are only
    materialised on demand, through the same
    shared-:class:`~repro.core.mincut._MoveLog` lazy mechanism the
    legacy generator uses, so a chain whose winner is picked by a
    columnar policy scan materialises exactly one candidate.

    The packed basis (``cb``, ``nb``) and resource totals are captured
    at construction: a later ``sync`` may rebasis or retotal the parent
    graph, and a deferred decode must still use the values the raw
    arrays were packed under.
    """

    __slots__ = (
        "fg",
        "seed",
        "order",
        "k",
        "_raw_cut",
        "_raw_cmem",
        "_ccpus",
        "_cb",
        "_nb",
        "_cbnb",
        "_total_mem",
        "_total_cpu",
        "_cut_bytes",
        "_cut_count",
        "_smem",
        "_scpu",
        "_log",
        "_materialized",
        "_fingerprint",
    )

    def __init__(
        self,
        fg: "FlatGraph",
        seed: FrozenSet[str],
        order: List[int],
        raw_cut: List[int],
        raw_cmem: List[int],
        ccpus: List[float],
        cb: int,
        nb: int,
        total_mem: int,
        total_cpu: float,
    ) -> None:
        self.fg = fg
        self.seed = seed
        self.order = order
        self.k = len(order)
        self._raw_cut = raw_cut
        self._raw_cmem = raw_cmem
        self._ccpus = ccpus
        self._cb = cb
        self._nb = nb
        self._cbnb = cb * nb
        self._total_mem = total_mem
        self._total_cpu = total_cpu
        self._cut_bytes: Optional[List[int]] = None
        self._cut_count: Optional[List[int]] = None
        self._smem: Optional[List[int]] = None
        self._scpu: Optional[List[float]] = None
        self._log: Optional[_MoveLog] = None
        self._materialized: Optional[List[CandidatePartition]] = None
        self._fingerprint = None

    @property
    def cut_bytes(self) -> List[int]:
        col = self._cut_bytes
        if col is None:
            cbnb = self._cbnb
            col = [c // cbnb for c in self._raw_cut]
            self._cut_bytes = col
        return col

    @property
    def cut_count(self) -> List[int]:
        col = self._cut_count
        if col is None:
            nb = self._nb
            cb = self._cb
            col = [(c // nb) % cb for c in self._raw_cut]
            self._cut_count = col
        return col

    @property
    def surrogate_memory(self) -> List[int]:
        col = self._smem
        if col is None:
            total_mem = self._total_mem
            col = [total_mem - m for m in self._raw_cmem]
            self._smem = col
        return col

    @property
    def surrogate_cpu(self) -> List[float]:
        col = self._scpu
        if col is None:
            total_cpu = self._total_cpu
            col = [total_cpu - c for c in self._ccpus]
            self._scpu = col
        return col

    @property
    def client_cpu(self) -> List[float]:
        return self._ccpus

    def _move_log(self) -> _MoveLog:
        log = self._log
        if log is None:
            names = self.fg.names
            log = _MoveLog(self.seed)
            log.order = [names[i] for i in self.order]
            self._log = log
        return log

    def candidate(self, index: int) -> CandidatePartition:
        """Materialise one candidate (index ``i``: client = seed + i moves)."""
        materialized = self._materialized
        if materialized is not None:
            return materialized[index]
        # Single-element decode (same expressions as the column
        # properties, so the values are bit-identical): picking one
        # winner must not force whole-column decoding.
        raw = self._raw_cut[index]
        ccpu = self._ccpus[index]
        return CandidatePartition._deferred(
            log=self._move_log(),
            moves_applied=index,
            cut_count=(raw // self._nb) % self._cb,
            cut_bytes=raw // self._cbnb,
            surrogate_memory=self._total_mem - self._raw_cmem[index],
            surrogate_cpu=self._total_cpu - ccpu,
            client_cpu=ccpu,
        )

    def candidates(self) -> List[CandidatePartition]:
        """The full legacy candidate list (memoised)."""
        materialized = self._materialized
        if materialized is None:
            log = self._move_log()
            materialized = [
                CandidatePartition._deferred(
                    log=log,
                    moves_applied=index,
                    cut_count=self.cut_count[index],
                    cut_bytes=self.cut_bytes[index],
                    surrogate_memory=self.surrogate_memory[index],
                    surrogate_cpu=self.surrogate_cpu[index],
                    client_cpu=self.client_cpu[index],
                )
                for index in range(self.k)
            ]
            self._materialized = materialized
        return materialized

    def materialized(self) -> Optional[List[CandidatePartition]]:
        """The candidate list if it was ever materialised, else None."""
        return self._materialized

    def fingerprint(self):
        """Hashable digest of the statistics columns (C-speed hashing).

        The columnar analogue of
        :func:`repro.core.policy.candidates_fingerprint`: node sets are
        excluded (no policy selects on them), and the integer columns
        are packed through ``array.tobytes`` so the policy-evaluation
        memo hashes five byte strings instead of k tuples.
        """
        fp = self._fingerprint
        if fp is None:
            try:
                fp = (
                    array("q", self.cut_bytes).tobytes(),
                    array("q", self.cut_count).tobytes(),
                    array("q", self.surrogate_memory).tobytes(),
                    array("d", self.surrogate_cpu).tobytes(),
                    array("d", self.client_cpu).tobytes(),
                )
            except OverflowError:
                # Statistics beyond int64 (pathological byte totals):
                # fall back to the legacy tuple-of-tuples shape.
                fp = tuple(
                    zip(self.cut_bytes, self.cut_count,
                        self.surrogate_memory, self.surrogate_cpu,
                        self.client_cpu)
                )
            self._fingerprint = fp
        return fp


class FlatGraph:
    """CSR + columns compiled from an :class:`ExecutionGraph`.

    Compile once, then feed each epoch's :class:`GraphDelta` through
    :meth:`sync` — weight changes patch the columns and packed
    increments in O(dirty); only node churn (a changed node set) forces
    a recompile, because the interning table must stay stable for the
    warm state's index-space bookkeeping to survive.
    """

    __slots__ = (
        "names",
        "idx",
        "n",
        "rank",
        "r2i",
        "node_mem",
        "node_cpu",
        "edge_a",
        "edge_b",
        "edge_bytes",
        "edge_count",
        "edge_pos",
        "edge_slot",
        "rows",
        "rowtot",
        "cb",
        "nb",
        "cbnb",
        "total_count",
        "total_mem",
        "half_edges",
        "synced_version",
        "_indptr",
        "_adj",
        "_eidx",
        "_csr_stale",
    )

    # -- compilation --------------------------------------------------------

    @classmethod
    def try_compile(cls, graph: ExecutionGraph) -> Optional["FlatGraph"]:
        """Compile a snapshot; None when the graph is unsupported.

        Negative edge weights (possible only through synthetic negative
        ``record_interaction`` deltas) would break the packed-key sign
        convention, so such graphs stay on the legacy string path.
        """
        self = cls.__new__(cls)
        names = list(graph.nodes())
        n = len(names)
        idx: Dict[str, int] = {}
        for i, name in enumerate(names):
            idx[name] = i
        node_mem: List[int] = [0] * n
        node_cpu: List[float] = [0.0] * n
        for name, stats in graph.node_items():
            i = idx[name]
            node_mem[i] = stats.memory_bytes
            node_cpu[i] = stats.cpu_seconds
        # Lexicographic interning rank: packed keys tie-break exactly
        # like the legacy (bytes, count, node-id) max selection.
        by_name = sorted(range(n), key=names.__getitem__)
        rank = [0] * n
        r2i = [0] * n
        for r, i in enumerate(by_name):
            rank[i] = r
            r2i[r] = i
        edge_a: List[int] = []
        edge_b: List[int] = []
        edge_bytes: List[int] = []
        edge_count: List[int] = []
        edge_pos: Dict[Tuple[str, str], int] = {}
        total_count = 0
        for key, edge in graph.edges():
            if edge.bytes < 0 or edge.count < 0:
                return None
            edge_pos[key] = len(edge_a)
            edge_a.append(idx[key[0]])
            edge_b.append(idx[key[1]])
            edge_bytes.append(edge.bytes)
            edge_count.append(edge.count)
            total_count += edge.count
        self.names = names
        self.idx = idx
        self.n = n
        self.rank = rank
        self.r2i = r2i
        self.node_mem = node_mem
        self.node_cpu = node_cpu
        self.edge_a = edge_a
        self.edge_b = edge_b
        self.edge_bytes = edge_bytes
        self.edge_count = edge_count
        self.edge_pos = edge_pos
        self.total_count = total_count
        self.total_mem = sum(node_mem)
        self.half_edges = 2 * len(edge_a)
        self.nb = _pow2_at_least(max(2, n))
        self.cb = _pow2_at_least(2 * (total_count + 1))
        self.cbnb = self.cb * self.nb
        self._build_rows()
        self._csr_stale = True
        self._indptr = self._adj = self._eidx = None
        self.synced_version = graph.version
        return self

    def _build_rows(self) -> None:
        """(Re)derive the kernel cache: packed rows, slots, row totals."""
        cb = self.cb
        nb = self.nb
        # Row entries are (neighbor, inc) tuples: CPython specialises
        # two-tuple unpacking in the kernel's hottest loop, and sync
        # patches a weight by replacing the whole tuple through its slot.
        rows: List[List[Tuple[int, int]]] = [[] for _ in range(self.n)]
        edge_slot: List[Tuple[int, int]] = []
        rowtot = [0] * self.n
        for e in range(len(self.edge_a)):
            a = self.edge_a[e]
            b = self.edge_b[e]
            inc = (self.edge_bytes[e] * cb + self.edge_count[e]) * nb
            edge_slot.append((len(rows[a]), len(rows[b])))
            rows[a].append((b, inc))
            rows[b].append((a, inc))
            rowtot[a] += inc
            rowtot[b] += inc
        self.rows = rows
        self.edge_slot = edge_slot
        self.rowtot = rowtot

    def csr(self) -> Tuple[array, array, array]:
        """Canonical CSR arrays ``(indptr, adj, eidx)`` (built lazily)."""
        if self._csr_stale:
            indptr = array("q", [0] * (self.n + 1))
            total = 0
            for i in range(self.n):
                total += len(self.rows[i])
                indptr[i + 1] = total
            adj = array("q", bytes(8 * total))
            eidx = array("q", bytes(8 * total))
            cursor = list(indptr[:-1])
            for e in range(len(self.edge_a)):
                a = self.edge_a[e]
                b = self.edge_b[e]
                adj[cursor[a]] = b
                eidx[cursor[a]] = e
                cursor[a] += 1
                adj[cursor[b]] = a
                eidx[cursor[b]] = e
                cursor[b] += 1
            self._indptr = indptr
            self._adj = adj
            self._eidx = eidx
            self._csr_stale = False
        return self._indptr, self._adj, self._eidx

    # -- epoch sync ---------------------------------------------------------

    def sync(
        self, graph: ExecutionGraph, delta: GraphDelta
    ) -> Optional[FlatDelta]:
        """Patch the snapshot with one epoch's delta; None => recompile.

        Reads the *current* values of every dirty node/edge from the
        graph (the delta names what changed; the graph is the source of
        truth), so it works across copy-on-write graph replacement as
        long as the delta covers the gap.  Returns None on node churn,
        on an edge whose endpoints are unknown, on negative weights, or
        when the post-sync link count disagrees with the graph (a sign
        the delta did not cover every mutation).
        """
        idx = self.idx
        if graph.node_count != self.n:
            return None
        for name in delta.nodes:
            if name not in idx:
                return None
        for a, b in delta.edges:
            if a not in idx or b not in idx:
                return None
        edge_changes: List[Tuple[int, int, int, int]] = []
        changed_pos: List[int] = []
        for key in sorted(delta.edges):
            edge = graph.edge(*key)
            if edge is None or edge.bytes < 0 or edge.count < 0:
                return None
            pos = self.edge_pos.get(key)
            if pos is None:
                pos = len(self.edge_a)
                self.edge_pos[key] = pos
                a = idx[key[0]]
                b = idx[key[1]]
                self.edge_a.append(a)
                self.edge_b.append(b)
                self.edge_bytes.append(0)
                self.edge_count.append(0)
                self.edge_slot.append((len(self.rows[a]), len(self.rows[b])))
                self.rows[a].append((b, 0))
                self.rows[b].append((a, 0))
                self.half_edges += 2
                self._csr_stale = True
            dbytes = edge.bytes - self.edge_bytes[pos]
            dcount = edge.count - self.edge_count[pos]
            if dbytes or dcount:
                self.edge_bytes[pos] = edge.bytes
                self.edge_count[pos] = edge.count
                self.total_count += dcount
                edge_changes.append(
                    (self.edge_a[pos], self.edge_b[pos], dbytes, dcount)
                )
                changed_pos.append(pos)
        node_changes: List[Tuple[int, int, float]] = []
        for name in sorted(delta.nodes):
            i = idx[name]
            stats = graph.node(name)
            dmem = stats.memory_bytes - self.node_mem[i]
            dcpu = stats.cpu_seconds - self.node_cpu[i]
            if dmem or dcpu:
                self.node_mem[i] = stats.memory_bytes
                self.node_cpu[i] = stats.cpu_seconds
                self.total_mem += dmem
                node_changes.append((i, dmem, dcpu))
        if graph.link_count != len(self.edge_a):
            return None
        rebased = False
        if self.total_count >= self.cb:
            # Counts outgrew the packed basis: double it and re-derive
            # every increment (amortised O(1) per epoch).
            self.cb = _pow2_at_least(2 * (self.total_count + 1))
            self.cbnb = self.cb * self.nb
            self._build_rows()
            rebased = True
        else:
            cb = self.cb
            nb = self.nb
            for pos in changed_pos:
                inc = (self.edge_bytes[pos] * cb + self.edge_count[pos]) * nb
                a = self.edge_a[pos]
                b = self.edge_b[pos]
                slot_a, slot_b = self.edge_slot[pos]
                old = self.rows[a][slot_a][1]
                dinc = inc - old
                self.rows[a][slot_a] = (b, inc)
                self.rows[b][slot_b] = (a, inc)
                self.rowtot[a] += dinc
                self.rowtot[b] += dinc
        self.synced_version = graph.version
        return FlatDelta(edge_changes, node_changes, rebased)

    # -- cut / connectivity queries ----------------------------------------

    def cut(self, client: Iterable[int]) -> Tuple[int, int]:
        """Interaction ``(count, bytes)`` crossing an index partition."""
        inside = bytearray(self.n)
        for i in client:
            inside[i] = 1
        count = 0
        nbytes = 0
        for e in range(len(self.edge_a)):
            if inside[self.edge_a[e]] != inside[self.edge_b[e]]:
                count += self.edge_count[e]
                nbytes += self.edge_bytes[e]
        return count, nbytes

    def connectivity(self, node: int, group: Iterable[int]) -> int:
        """Total edge bytes between ``node`` and the index ``group``."""
        members = set(group)
        cbnb = self.cbnb
        total = 0
        for w, inc in self.rows[node]:
            if w in members:
                total += inc // cbnb
        return total

    # -- cold candidate generation -----------------------------------------

    def _seed_set(self, pinned: Iterable[str]) -> set:
        """Mirror of ``mincut._seed_nodes`` on the interned snapshot."""
        idx = self.idx
        seed = {name for name in pinned if name in idx}
        if seed:
            return seed
        if not self.n:
            raise PartitioningError(
                "cannot partition an empty execution graph"
            )
        names = self.names
        cbnb = self.cbnb
        rowtot = self.rowtot
        # rowtot[i] // cbnb is exactly the node's total edge bytes (the
        # count and rank fields cannot carry into the byte field).
        best = max(range(self.n),
                   key=lambda i: (rowtot[i] // cbnb, names[i]))
        return {names[best]}

    def generate_chain(
        self, pinned: Iterable[str],
        warm: Optional[FlatWarmState] = None,
    ) -> FlatChain:
        """Cold run of the MINCUT heuristic on packed integer keys.

        Emits bit-identical candidates to the legacy generator: same
        move order, same integer cut/memory statistics, and the same
        float accumulation order for the CPU columns (the seed sums are
        taken in the same set-iteration order the legacy path uses).
        """
        seed_set = self._seed_set(pinned)
        n = self.n
        idx = self.idx
        seed_idx = [idx[name] for name in seed_set]
        k = n - len(seed_idx)
        node_mem = self.node_mem
        node_cpu = self.node_cpu
        client_mem = sum(node_mem[i] for i in seed_idx)
        client_cpu = sum(node_cpu[i] for i in seed_idx)
        total_mem = self.total_mem
        total_cpu = sum(node_cpu)
        seed_key = frozenset(seed_set)
        if warm is not None:
            warm.ready = False
            warm.seed_key = seed_key
        if k == 0:
            return FlatChain(self, seed_key, [], [], [], [],
                             self.cb, self.nb, total_mem, total_cpu)
        nb = self.nb
        cb = self.cb
        rows = self.rows
        rowtot = self.rowtot
        r2i = self.r2i
        record = warm is not None
        # ``cur`` holds the *negated* packed connectivity of each
        # surrogate (<= 0) so relaxations push heap entries without a
        # per-push negation; +1 marks a client-side node (no surrogate
        # value is positive, so the sentinel can never collide).
        cur = [-r for r in self.rank]
        for s in seed_idx:
            cur[s] = 1
        cut_pk = 0
        for s in seed_idx:
            for w, inc in rows[s]:
                if cur[w] <= 0:
                    cut_pk += inc
                    cur[w] -= inc
        heap = [c for c in cur if c <= 0]
        heapq.heapify(heap)
        order = [0] * k
        # Only raw accumulators are recorded inside the hot loop; the
        # statistics columns are decoded lazily by FlatChain, and only
        # the ones a policy actually scans.
        raw_cut = [0] * k
        raw_cmem = [0] * k
        ccpus = [0.0] * k
        sel_packed: List[int] = [0] * (k - 1) if record else []
        raw_cut[0] = cut_pk
        raw_cmem[0] = client_mem
        ccpus[0] = client_cpu
        heappop = heapq.heappop
        heappush = heapq.heappush
        heapify = heapq.heapify
        # Lazy deletion lets stale entries pile up (every relaxation
        # pushes afresh); once the heap outgrows the live surrogate
        # population by 4x, rebuilding it from ``cur`` in one C-speed
        # heapify is cheaper than sifting pops through the dead weight.
        compact_at = 4 * len(heap) + 64
        # Exactly one fresh winner is consumed per iteration, so the
        # k - 1 moves need no separate remaining-count bookkeeping.
        for step in range(k - 1):
            if len(heap) > compact_at:
                heap = [c for c in cur if c <= 0]
                heapify(heap)
                compact_at = 4 * len(heap) + 64
            while True:
                negpk = heappop(heap)
                packed = -negpk
                rk = packed % nb
                v = r2i[rk]
                if cur[v] == negpk:
                    break
            cur[v] = 1
            if record:
                sel_packed[step] = packed
            client_mem += node_mem[v]
            client_cpu += node_cpu[v]
            cut_pk += rowtot[v] - 2 * (packed - rk)
            for w, inc in rows[v]:
                pk = cur[w]
                if pk <= 0:
                    pk -= inc
                    cur[w] = pk
                    heappush(heap, pk)
            order[step] = v
            ci = step + 1
            raw_cut[ci] = cut_pk
            raw_cmem[ci] = client_mem
            ccpus[ci] = client_cpu
        # The never-moved remainder closes the order (exactly one node).
        for v in range(n):
            if cur[v] <= 0:
                order[k - 1] = v
                break
        chain = FlatChain(self, seed_key, order, raw_cut, raw_cmem,
                          ccpus, cb, nb, total_mem, total_cpu)
        if record:
            self._commit_warm(warm, chain, sel_packed)
        return chain

    def _commit_warm(
        self, warm: FlatWarmState, chain: FlatChain,
        sel_packed: List[int],
    ) -> None:
        pos = [0] * self.n
        for j, v in enumerate(chain.order):
            pos[v] = j + 1
        warm.seed_key = chain.seed
        warm.order = chain.order
        warm.pos = pos
        warm.sel_packed = sel_packed
        warm.cb = self.cb
        warm.nb = self.nb
        # Repair only ever reads the candidate-0 cut; decode just that
        # element rather than forcing the chain's full columns.
        raw0 = chain._raw_cut[0]
        warm.cut_bytes0 = raw0 // chain._cbnb
        warm.cut_count0 = (raw0 // chain._nb) % chain._cb
        warm.ready = chain.k >= 2

    # -- bounded local repair ----------------------------------------------

    def repair_chain(
        self,
        warm: FlatWarmState,
        fdelta: FlatDelta,
        pinned: Iterable[str],
    ) -> Tuple[Optional[FlatChain], Optional[str], int, int]:
        """Replay + repair the previous move order against the delta.

        Returns ``(chain, fail_reason, splices, promotions)``; ``chain``
        is None exactly when ``fail_reason`` names the cold-fallback
        cause.  See the module docstring for the algorithm; the key
        invariant is that any node whose connectivity timeline can
        differ from the recorded run is in the exactly-tracked set, so
        untracked hypothesis winners can reuse their recorded packed
        selections verbatim.
        """
        k = len(warm.order)
        if not warm.ready or k < 2:
            return None, COLD_NOT_READY, 0, 0
        idx = self.idx
        # Same seeding rule as the cold path, most-connected fallback
        # included — a delta can legitimately move that fallback seed,
        # which is a real seed change and repairs cannot survive it.
        seed_set = self._seed_set(pinned)
        if frozenset(seed_set) != warm.seed_key:
            return None, COLD_SEED_CHANGE, 0, 0
        cb = self.cb
        nb = self.nb
        if warm.cb != cb or warm.nb != nb:
            # The packed basis moved under the recorded selections:
            # re-encode them (O(k)) before comparing anything.
            ocb, onb = warm.cb, warm.nb
            ocbnb = ocb * onb
            warm.sel_packed = [
                ((p // ocbnb) * cb + (p // onb) % ocb) * nb + p % onb
                for p in warm.sel_packed
            ]
            warm.cb = cb
            warm.nb = nb
        pos = warm.pos
        old_order = warm.order
        osel = warm.sel_packed
        rank = self.rank
        r2i = self.r2i
        rows = self.rows
        rowtot = self.rowtot
        node_mem = self.node_mem
        node_cpu = self.node_cpu

        # Candidate-0 baseline: patch the recorded seed cut with the
        # deltas of seed-crossing edges; memory/CPU come fresh from the
        # columns (same accumulation order as the cold kernel, so a
        # repaired chain is bit-identical to a cold rerun).
        cut_b0 = warm.cut_bytes0
        cut_c0 = warm.cut_count0
        for a, b, dbytes, dcount in fdelta.edge_changes:
            if (pos[a] == 0) != (pos[b] == 0):
                cut_b0 += dbytes
                cut_c0 += dcount
        seed_idx = [idx[name] for name in seed_set]
        client_mem = sum(node_mem[i] for i in seed_idx)
        client_cpu = sum(node_cpu[i] for i in seed_idx)
        total_mem = self.total_mem
        total_cpu = sum(node_cpu)

        onclient = bytearray(self.n)
        for s in seed_idx:
            onclient[s] = 1
        budget = max(REPAIR_BUDGET_MIN,
                     int(self.half_edges * REPAIR_BUDGET_FRACTION))
        work = 0
        # Exactly-tracked packed connectivities: endpoints of changed
        # edges now, neighbors of out-of-order movers as they appear.
        tracked: Dict[int, int] = {}
        for a, b, _, _ in fdelta.edge_changes:
            for v in (a, b):
                if pos[v] > 0 and v not in tracked:
                    row = rows[v]
                    work += len(row)
                    val = rank[v]
                    for w, inc in row:
                        if onclient[w]:
                            val += inc
                    tracked[v] = val
        if work > budget:
            return None, COLD_BUDGET, 0, 0
        # touch: future mover -> [(tracked node, packed inc)] updates.
        touch: Dict[int, List[Tuple[int, int]]] = {}
        for v in tracked:
            for w, inc in rows[v]:
                if not onclient[w]:
                    touch.setdefault(w, []).append((v, inc))
        heap = [-val for val in tracked.values()]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappush = heapq.heappush

        order_new = [0] * k
        # Raw accumulators in the loop, lazy column decode in
        # FlatChain — same deferral as the cold kernel.
        raw_cut = [0] * k
        raw_cmem = [0] * k
        ccpus = [0.0] * k
        sel_new = [0] * (k - 1)
        cut_pk = (cut_b0 * cb + cut_c0) * nb
        raw_cut[0] = cut_pk
        raw_cmem[0] = client_mem
        ccpus[0] = client_cpu
        splices = 0
        promotions = 0
        optr = 0
        for step in range(k - 1):
            while onclient[old_order[optr]]:
                optr += 1
            w = old_order[optr]
            recorded = osel[optr] if w not in tracked else None
            if recorded is None:
                wv = tracked[w]
                if wv < osel[optr]:
                    # The recorded winner shrank: untracked nodes below
                    # its *recorded* value might now beat it, and their
                    # current connectivities are unknown.  Bail cold.
                    return None, COLD_SHRUNK_WINNER, splices, promotions
            else:
                wv = recorded
            mover = w
            mv = wv
            via_heap = False
            while heap:
                tv = -heap[0]
                v = r2i[tv % nb]
                if onclient[v] or tracked.get(v) != tv:
                    heappop(heap)
                    continue
                if tv > wv:
                    mover = v
                    mv = tv
                    via_heap = True
                    heappop(heap)
                break
            if via_heap:
                splices += 1
            else:
                optr += 1
            onclient[mover] = 1
            tracked.pop(mover, None)
            for t, inc in touch.pop(mover, ()):
                cv = tracked.get(t)
                if cv is not None:
                    cv += inc
                    tracked[t] = cv
                    heappush(heap, -cv)
            if via_heap:
                # An out-of-order move shifts the client timeline of
                # every neighbor, so their recorded values are no
                # longer comparable: promote them to exact tracking.
                for nbr, _ in rows[mover]:
                    if not onclient[nbr] and nbr not in tracked:
                        promotions += 1
                        row = rows[nbr]
                        work += len(row)
                        if work > budget:
                            return None, COLD_BUDGET, splices, promotions
                        val = rank[nbr]
                        for w2, inc2 in row:
                            if onclient[w2]:
                                val += inc2
                        tracked[nbr] = val
                        heappush(heap, -val)
                        for w2, inc2 in row:
                            if not onclient[w2]:
                                touch.setdefault(w2, []).append((nbr, inc2))
            client_mem += node_mem[mover]
            client_cpu += node_cpu[mover]
            cut_pk += rowtot[mover] - 2 * (mv - mv % nb)
            sel_new[step] = mv
            order_new[step] = mover
            ci = step + 1
            raw_cut[ci] = cut_pk
            raw_cmem[ci] = client_mem
            ccpus[ci] = client_cpu
        for v in old_order:
            if not onclient[v]:
                order_new[k - 1] = v
                break
        chain = FlatChain(self, warm.seed_key, order_new, raw_cut,
                          raw_cmem, ccpus, cb, nb, total_mem, total_cpu)
        self._commit_warm(warm, chain, sel_new)
        return chain, None, splices, promotions


# -- stateless snapshot cache ----------------------------------------------

#: Compiled snapshots for stateless ``Partitioner.partition`` callers,
#: keyed weakly by graph identity and validated against the graph's
#: version counter — repeated partitions of an unchanged graph (the
#: common multi-consumer case) reuse one compile.
_snapshots: "WeakKeyDictionary[ExecutionGraph, FlatGraph]" = (
    WeakKeyDictionary()
)


def snapshot(graph: ExecutionGraph) -> Optional[FlatGraph]:
    """A compiled snapshot of ``graph`` (cached while its version holds).

    Returns None when the graph is unsupported by the flat path (see
    :meth:`FlatGraph.try_compile`); callers fall back to the legacy
    string-keyed generator.
    """
    fg = _snapshots.get(graph)
    if fg is not None and fg.synced_version == graph.version:
        return fg
    fg = FlatGraph.try_compile(graph)
    if fg is not None:
        try:
            _snapshots[graph] = fg
        except TypeError:
            pass  # non-weakrefable graph subclass: still usable, uncached
    return fg
