"""Interprocedural traffic dataflow over the extracted facts.

The base predictor (:func:`repro.analysis.staticgraph.predict_graph`)
weights each site by its *local* loop depth only: a call executed once
per run and a call executed inside the entry point's hot loop look the
same once you are one call level down.  This module closes that gap
with three cooperating passes built on the per-method summaries of
:mod:`repro.analysis.summaries`:

* **Call-frequency fixpoint** — seeds the entry point (``<main>``) with
  frequency 1 and propagates ``freq(caller) × B**depth`` through every
  call site, splitting evenly across the resolver's candidate set.
  The result estimates how often each method runs per program run.
* **Constant-argument propagation** — merges the symbolic arguments of
  every call site into the callee's :class:`~repro.analysis.facts
  .ParamRef` slots (context-insensitively), so constants such as the
  element count of ``System.arraycopy`` and array-typed operands
  survive one call level down.
* **Escape analysis** — classifies fields, arrays, and statics as
  client-confined, surrogate-confined, or cross-partition from the
  sides (pinned vs offloadable) of their weighted accessors.

:func:`predict_traffic` combines the passes into a
:class:`TrafficPrediction`: a re-weighted copy of the static
:class:`~repro.core.graph.ExecutionGraph` whose node and edge sets are
unchanged (preserving the superset-of-runtime parity property) but
whose edge bytes now reflect predicted *traffic*, plus the raw
frequency, binding, and escape tables that power the AL4xx lint rules
and the weighted cold-start/fleet seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.graph import ExecutionGraph, edge_key
from ..vm.objectmodel import SLOT_SIZES
from .facts import (
    MAIN_CLASS,
    ArrayAccessFact,
    ArrayData,
    CallFact,
    ElemOf,
    FieldAccessFact,
    FieldOf,
    NumConst,
    ParamRef,
    ProgramFacts,
    ReturnOf,
    StaticAccessFact,
    UnionRef,
    Unknown,
    ValueRef,
    WorkFact,
    union_of,
)
from .staticgraph import (
    ACCESS_BYTES,
    ARG_BYTES,
    DEFAULT_WORK_SECONDS,
    INVOKE_BASE_BYTES,
    Resolver,
)
from .summaries import (
    MethodSummary,
    SummaryConfig,
    build_summaries,
    fact_weight,
)

__all__ = [
    "DataflowConfig", "StateTraffic", "EscapeReport", "TrafficPrediction",
    "predict_traffic", "substitute",
]

_UNKNOWN = Unknown()

MethodKey = Tuple[str, str]


@dataclass(frozen=True)
class DataflowConfig:
    """Knobs for the interprocedural passes."""

    #: Loop-depth weighting base B (a site under k loops runs B**k
    #: times per method invocation, for loops without a constant trip
    #: count).
    loop_base: float = 8.0
    #: Cap on one site's local weight.  Far above the legacy syntactic
    #: cap (4096) because constant trip counts are real: a 256x192
    #: pixel loop legitimately runs ~49k times per invocation.
    max_site_weight: float = 1e6
    #: Element count for unresolvable array accesses.
    default_array_count: int = 8
    #: Cap on any method's predicted call frequency (recursion guard).
    max_call_freq: float = 1e9
    #: Frequency-fixpoint iteration cap.
    max_rounds: int = 40
    #: Convergence tolerance (max relative frequency change per round).
    tolerance: float = 1e-6
    #: Argument-binding propagation passes (bounded: one pass moves
    #: constants one call level down).
    binding_rounds: int = 3
    #: Frequency floor applied when weighting traffic, so statically
    #: reachable-but-cold methods keep non-zero predicted edges (the
    #: weighted graph must stay a superset of any run's monitor graph).
    min_method_freq: float = 1.0 / 64.0

    def summary_config(self) -> SummaryConfig:
        return SummaryConfig(
            loop_base=self.loop_base,
            max_site_weight=self.max_site_weight,
            default_array_count=self.default_array_count,
        )


# -- symbolic substitution ----------------------------------------------------


def substitute(
    ref: Optional[ValueRef],
    binding: Dict[int, ValueRef],
    _depth: int = 0,
) -> Optional[ValueRef]:
    """Replace :class:`ParamRef` slots in ``ref`` with merged caller args."""
    if ref is None or _depth > 6:
        return ref
    if isinstance(ref, ParamRef):
        return binding.get(ref.index, _UNKNOWN)
    if isinstance(ref, FieldOf):
        return FieldOf(substitute(ref.owner, binding, _depth + 1), ref.field)
    if isinstance(ref, ElemOf):
        return ElemOf(substitute(ref.container, binding, _depth + 1))
    if isinstance(ref, ArrayData):
        return ArrayData(substitute(ref.container, binding, _depth + 1))
    if isinstance(ref, ReturnOf):
        return ReturnOf(
            substitute(ref.receiver, binding, _depth + 1), ref.method
        )
    if isinstance(ref, UnionRef):
        return union_of(
            *[substitute(part, binding, _depth + 1) for part in ref.parts]
        )
    return ref


def _strip_params(ref: Optional[ValueRef]) -> Optional[ValueRef]:
    """Degrade any remaining :class:`ParamRef` to :class:`Unknown`."""
    return substitute(ref, {})


class _Site:
    """Minimal stand-in for a SummarySite outside the summary tables."""

    __slots__ = ("fact", "local_weight")

    def __init__(self, fact, local_weight: float) -> None:
        self.fact = fact
        self.local_weight = local_weight


def _resolved_weight(site, binding: Dict[int, ValueRef],
                     config: DataflowConfig) -> float:
    """A site's local weight with symbolic trip bounds resolved.

    Most sites keep their summary weight; sites under a loop whose
    ``range`` bound is a method parameter (e.g. ``render(image, rows)``
    iterating ``range(rows)``) resolve the bound through the method's
    argument binding, recovering the real per-invocation repeat count.
    """
    fact = site.fact
    trips = getattr(fact, "trips", ())
    if not any(isinstance(trip, ValueRef) for trip in trips):
        return site.local_weight
    depth = getattr(fact, "depth", 0)
    weight = 1.0
    for level in range(depth):
        trip = trips[level] if level < len(trips) else None
        if isinstance(trip, ValueRef):
            options = _numeric_options(substitute(trip, binding))
            trip = max(1, int(max(options))) if options else None
        if isinstance(trip, (int, float)):
            weight *= float(trip)
        else:
            weight *= config.loop_base
        if weight >= config.max_site_weight:
            return config.max_site_weight
    return max(weight, 1.0)


def _has_param(ref: Optional[ValueRef], _depth: int = 0) -> bool:
    """Whether a reference mentions any :class:`ParamRef` slot."""
    if ref is None or _depth > 6:
        return False
    if isinstance(ref, ParamRef):
        return True
    if isinstance(ref, FieldOf):
        return _has_param(ref.owner, _depth + 1)
    if isinstance(ref, (ElemOf, ArrayData)):
        return _has_param(ref.container, _depth + 1)
    if isinstance(ref, ReturnOf):
        return _has_param(ref.receiver, _depth + 1)
    if isinstance(ref, UnionRef):
        return any(_has_param(part, _depth + 1) for part in ref.parts)
    return False


# -- escape analysis ----------------------------------------------------------


@dataclass
class StateTraffic:
    """Weighted accessor-side totals for one piece of guest state."""

    client_bytes: float = 0.0
    offload_bytes: float = 0.0
    reads: float = 0.0
    writes: float = 0.0
    readers: Set[str] = dataclass_field(default_factory=set)
    writers: Set[str] = dataclass_field(default_factory=set)

    def charge(self, accessor: str, client_side: bool, nbytes: float,
               rate: float, is_write: bool) -> None:
        if client_side:
            self.client_bytes += nbytes
        else:
            self.offload_bytes += nbytes
        if is_write:
            self.writes += rate
            self.writers.add(accessor)
        else:
            self.reads += rate
            self.readers.add(accessor)

    @property
    def total_bytes(self) -> float:
        return self.client_bytes + self.offload_bytes

    @property
    def classification(self) -> str:
        if self.total_bytes <= 0:
            return "idle"
        if self.offload_bytes <= 0:
            return "client-confined"
        if self.client_bytes <= 0:
            return "surrogate-confined"
        return "cross-partition"


@dataclass
class EscapeReport:
    """Client-confined vs cross-partition classification of state."""

    #: (owner class, field name) -> weighted accessor traffic.
    fields: Dict[Tuple[str, str], StateTraffic] = dataclass_field(
        default_factory=dict
    )
    #: array class name (``char[]`` …) -> weighted accessor traffic.
    arrays: Dict[str, StateTraffic] = dataclass_field(default_factory=dict)
    #: (declaring class, static field name) -> weighted accessor traffic.
    statics: Dict[Tuple[str, str], StateTraffic] = dataclass_field(
        default_factory=dict
    )

    def cross_partition_fields(self) -> List[Tuple[str, str]]:
        return sorted(
            key for key, state in self.fields.items()
            if state.classification == "cross-partition"
        )

    def cross_partition_arrays(self) -> List[str]:
        return sorted(
            name for name, state in self.arrays.items()
            if state.classification == "cross-partition"
        )


# -- the prediction -----------------------------------------------------------


@dataclass
class TrafficPrediction:
    """Interprocedural traffic estimate for one program."""

    config: DataflowConfig
    #: Predicted invocations per program run, per method.
    freq: Dict[MethodKey, float]
    #: Merged symbolic arguments per method parameter slot.
    bindings: Dict[MethodKey, Dict[int, ValueRef]]
    #: The re-weighted static graph (same nodes/edges as the base
    #: predicted graph; bytes now carry interprocedural weight).
    graph: ExecutionGraph
    pinned: FrozenSet[str]
    escape: EscapeReport
    #: Predicted bytes crossing the pinned/offloadable boundary.
    cross_traffic_bytes: float
    #: Predicted round trips per weighted edge.
    edge_rtts: Dict[Tuple[str, str], float]
    fixpoint_rounds: int = 0

    def method_freq(self, key: MethodKey) -> float:
        return max(self.freq.get(key, 0.0), self.config.min_method_freq)

    def site_rate(self, key: MethodKey, fact) -> float:
        """Predicted executions of one site per program run."""
        local = _resolved_weight(
            _Site(fact, fact_weight(fact, self.config.summary_config())),
            self.binding_for(key), self.config,
        )
        return self.method_freq(key) * local

    def binding_for(self, key: MethodKey) -> Dict[int, ValueRef]:
        return self.bindings.get(key, {})

    def resolve_count(self, key: MethodKey, fact: ArrayAccessFact) -> int:
        """Concrete element count of an array access, best effort."""
        if fact.count is not None:
            return fact.count
        ref = substitute(fact.count_ref, self.binding_for(key))
        counts = _numeric_options(ref)
        if counts:
            return max(1, int(max(counts)))
        if fact.count_ref is None:
            # ctx.array_read(arr) defaults to one element at runtime.
            return 1
        return self.config.default_array_count

    def side_of(self, node: str) -> str:
        return "client" if node in self.pinned else "offload"


def _numeric_options(ref: Optional[ValueRef]) -> List[float]:
    if isinstance(ref, NumConst):
        return [ref.value]
    if isinstance(ref, UnionRef):
        values: List[float] = []
        for part in ref.parts:
            if isinstance(part, NumConst):
                values.append(part.value)
        return values
    return []


def _array_slot_bytes(array_class: str) -> int:
    element = array_class[:-2] if array_class.endswith("[]") else "ref"
    return SLOT_SIZES.get(element, SLOT_SIZES["ref"])


# -- passes -------------------------------------------------------------------


def _propagate_bindings(
    program: ProgramFacts,
    resolver: Resolver,
    summaries: Dict[MethodKey, MethodSummary],
    config: DataflowConfig,
) -> Dict[MethodKey, Dict[int, ValueRef]]:
    """Merge call-site arguments into callee parameter slots."""
    bindings: Dict[MethodKey, Dict[int, ValueRef]] = {}
    for _ in range(max(1, config.binding_rounds)):
        changed = False
        for caller_key, summary in summaries.items():
            caller_binding = bindings.get(caller_key, {})
            for site in summary.calls:
                fact: CallFact = site.fact
                if not fact.args:
                    continue
                candidates = resolver.invoke_candidates(
                    substitute(fact.receiver, caller_binding), fact.method
                )
                for candidate in candidates:
                    callee_key = (candidate, fact.method)
                    if callee_key not in summaries:
                        continue
                    slots = bindings.setdefault(callee_key, {})
                    for index, arg in enumerate(fact.args):
                        value = substitute(arg, caller_binding)
                        merged = union_of(slots.get(index), value)
                        if merged != slots.get(index):
                            slots[index] = merged
                            changed = True
        if not changed:
            break
    return bindings


def _call_frequencies(
    program: ProgramFacts,
    resolver: Resolver,
    summaries: Dict[MethodKey, MethodSummary],
    bindings: Dict[MethodKey, Dict[int, ValueRef]],
    config: DataflowConfig,
) -> Tuple[Dict[MethodKey, float], int]:
    """Fixpoint: predicted invocations per program run, per method."""
    seed: Dict[MethodKey, float] = {}
    if (MAIN_CLASS, "main") in summaries:
        seed[(MAIN_CLASS, "main")] = 1.0
    else:
        # Registry-only analysis (no entry point): assume each method
        # is an entry called once, so relative loop weights still rank.
        seed = {key: 1.0 for key in summaries}

    freq = dict(seed)
    rounds = 0
    for rounds in range(1, max(1, config.max_rounds) + 1):
        incoming: Dict[MethodKey, float] = {}
        for caller_key, summary in summaries.items():
            caller_freq = freq.get(caller_key, 0.0)
            if caller_freq <= 0.0:
                continue
            caller_binding = bindings.get(caller_key, {})
            for site in summary.calls:
                fact: CallFact = site.fact
                candidates = resolver.invoke_candidates(
                    substitute(fact.receiver, caller_binding), fact.method
                )
                if not candidates:
                    continue
                local = _resolved_weight(site, caller_binding, config)
                share = caller_freq * local / len(candidates)
                for candidate in candidates:
                    callee_key = (candidate, fact.method)
                    if callee_key not in summaries:
                        continue
                    incoming[callee_key] = incoming.get(callee_key, 0.0) + share
        updated = dict(seed)
        for key, value in incoming.items():
            updated[key] = min(
                updated.get(key, 0.0) + value, config.max_call_freq
            )
        worst = 0.0
        for key in set(updated) | set(freq):
            old = freq.get(key, 0.0)
            new = updated.get(key, 0.0)
            denom = max(old, new, 1.0)
            worst = max(worst, abs(new - old) / denom)
        freq = updated
        if worst <= config.tolerance:
            break
    return freq, rounds


def _incoming_sites(
    resolver: Resolver,
    summaries: Dict[MethodKey, MethodSummary],
    bindings: Dict[MethodKey, Dict[int, ValueRef]],
    freq: Dict[MethodKey, float],
    config: DataflowConfig,
) -> Dict[MethodKey, List[Tuple[float, Dict[int, ValueRef]]]]:
    """Per-call-site ``(rate, argument binding)`` descriptors per callee.

    One level of context sensitivity for parameter-dependent facts: a
    ``char[]`` copy reached from the text editor must not inherit the
    ``int[]`` operands (and counts) that an image-processing caller
    merged into the same parameter slots.
    """
    incoming: Dict[MethodKey, List[Tuple[float, Dict[int, ValueRef]]]] = {}
    for caller_key, summary in summaries.items():
        caller_freq = max(freq.get(caller_key, 0.0), config.min_method_freq)
        caller_binding = bindings.get(caller_key, {})
        for site in summary.calls:
            fact: CallFact = site.fact
            candidates = resolver.invoke_candidates(
                substitute(fact.receiver, caller_binding), fact.method
            )
            if not candidates:
                continue
            local = _resolved_weight(site, caller_binding, config)
            rate = caller_freq * local / len(candidates)
            site_binding = {
                index: substitute(arg, caller_binding)
                for index, arg in enumerate(fact.args)
            }
            for candidate in candidates:
                callee_key = (candidate, fact.method)
                if callee_key not in summaries:
                    continue
                incoming.setdefault(callee_key, []).append(
                    (rate, site_binding)
                )
    return incoming


def predict_traffic(
    program: ProgramFacts,
    resolver: Optional[Resolver] = None,
    base_graph: Optional[ExecutionGraph] = None,
    pinned: Optional[FrozenSet[str]] = None,
    config: Optional[DataflowConfig] = None,
) -> TrafficPrediction:
    """Run the interprocedural passes and build the weighted graph."""
    from .staticgraph import predict_graph  # cycle-free at call time

    config = config or DataflowConfig()
    resolver = resolver or Resolver(program)
    if base_graph is None:
        base_graph = predict_graph(program, resolver)
    if pinned is None:
        pinned = frozenset(program.native_method_classes()) | {MAIN_CLASS}

    summaries = build_summaries(program, config.summary_config())
    bindings = _propagate_bindings(program, resolver, summaries, config)
    freq, rounds = _call_frequencies(
        program, resolver, summaries, bindings, config
    )
    incoming = _incoming_sites(resolver, summaries, bindings, freq, config)

    traffic: Dict[Tuple[str, str], float] = {}
    rtts: Dict[Tuple[str, str], float] = {}
    cpu: Dict[str, float] = {}
    escape = EscapeReport()

    def charge(accessor: str, owner: str, nbytes: float, rate: float) -> None:
        if accessor == owner:
            return
        key = edge_key(accessor, owner)
        traffic[key] = traffic.get(key, 0.0) + nbytes
        rtts[key] = rtts.get(key, 0.0) + rate

    for method_key, summary in summaries.items():
        accessor = summary.class_name
        client_side = accessor in pinned
        ef = max(freq.get(method_key, 0.0), config.min_method_freq)
        binding = bindings.get(method_key, {})

        for site in summary.calls:
            fact: CallFact = site.fact
            rate = ef * _resolved_weight(site, binding, config)
            nbytes = INVOKE_BASE_BYTES + ARG_BYTES * fact.nargs
            candidates = resolver.invoke_candidates(
                substitute(fact.receiver, binding), fact.method
            )
            if not candidates:
                continue
            share = rate / len(candidates)
            for callee in candidates:
                charge(accessor, callee, nbytes * share, share)

        for site in summary.field_accesses:
            fact = site.fact
            rate = ef * _resolved_weight(site, binding, config)
            candidates = resolver.field_candidates(
                substitute(fact.receiver, binding), fact.field
            )
            if not candidates:
                continue
            share = rate / len(candidates)
            for owner in candidates:
                charge(accessor, owner, ACCESS_BYTES * share, share)
                escape.fields.setdefault(
                    (owner, fact.field), StateTraffic()
                ).charge(accessor, client_side, ACCESS_BYTES * share,
                         share, fact.is_write)

        for site in summary.static_accesses:
            fact = site.fact
            rate = ef * _resolved_weight(site, binding, config)
            candidates = resolver.static_candidates(
                fact.class_name, fact.field
            )
            if not candidates:
                continue
            share = rate / len(candidates)
            for owner in candidates:
                charge(accessor, owner, ACCESS_BYTES * share, share)
                escape.statics.setdefault(
                    (owner, fact.field), StateTraffic()
                ).charge(accessor, client_side, ACCESS_BYTES * share,
                         share, fact.is_write)

        for site in summary.array_accesses:
            fact = site.fact
            per_site = incoming.get(method_key)
            if per_site and (
                _has_param(fact.array) or _has_param(fact.count_ref)
            ):
                # Parameter-dependent operands: attribute through each
                # concrete call site so unrelated callers' arrays and
                # counts do not cross-contaminate.
                contexts = [
                    (caller_rate * _resolved_weight(site, site_binding,
                                                    config), site_binding)
                    for caller_rate, site_binding in per_site
                ]
            else:
                contexts = [(ef * _resolved_weight(site, binding, config),
                             binding)]
            for rate, ctx_binding in contexts:
                count = fact.count
                if count is None:
                    ref = substitute(fact.count_ref, ctx_binding)
                    options = _numeric_options(ref)
                    if options:
                        count = max(1, int(max(options)))
                    elif fact.count_ref is None:
                        count = 1
                    else:
                        count = config.default_array_count
                candidates = resolver.array_candidates(
                    substitute(fact.array, ctx_binding)
                )
                if not candidates:
                    continue
                share = rate / len(candidates)
                for array_class in candidates:
                    nbytes = _array_slot_bytes(array_class) * count * share
                    charge(accessor, array_class, nbytes, share)
                    escape.arrays.setdefault(
                        array_class, StateTraffic()
                    ).charge(accessor, client_side, nbytes, share,
                             fact.is_write)

        for site in summary.works:
            fact = site.fact
            seconds = (fact.seconds if fact.seconds is not None
                       else DEFAULT_WORK_SECONDS)
            cpu[accessor] = cpu.get(accessor, 0.0) + (
                seconds * ef * _resolved_weight(site, binding, config)
            )

    # Re-weight the base graph without changing its node or edge sets:
    # the parity tests rely on the static graph staying a superset of
    # every run's monitor graph.
    weighted = ExecutionGraph()
    for node_id in base_graph.nodes():
        stats = base_graph.node(node_id)
        node = weighted.ensure_node(node_id)
        node.memory_bytes = stats.memory_bytes
    for name, seconds in cpu.items():
        if weighted.has_node(name):
            weighted.add_cpu(name, seconds)
    for (a, b), _edge in base_graph.edges():
        key = edge_key(a, b)
        nbytes = max(1, int(round(traffic.get(key, 0.0))))
        count = max(1, int(round(rtts.get(key, 0.0))))
        weighted.record_interaction(a, b, nbytes, count=count)
    # Substitution can only narrow candidate sets, so every traffic key
    # already exists in the base graph; tolerate strays defensively.
    for key, nbytes in traffic.items():
        if weighted.edge(*key) is None:
            weighted.record_interaction(
                key[0], key[1], max(1, int(round(nbytes))),
                count=max(1, int(round(rtts.get(key, 0.0)))),
            )

    cross = 0.0
    for (a, b), edge in weighted.edges():
        if (a in pinned) != (b in pinned):
            cross += edge.bytes

    return TrafficPrediction(
        config=config,
        freq=freq,
        bindings=bindings,
        graph=weighted,
        pinned=pinned,
        escape=escape,
        cross_traffic_bytes=cross,
        edge_rtts=rtts,
        fixpoint_rounds=rounds,
    )
