"""AST extraction of guest-method facts.

Every guest method body is an ordinary Python callable registered in a
:class:`~repro.vm.objectmodel.MethodDef`, written against the narrow
``ctx`` API.  This module locates each callable's AST (including
lambdas, via the method's source metadata), walks it, and emits the
facts defined in :mod:`repro.analysis.facts`.

Key mechanics:

* **Host resolution** — names resolve through the callable's closure
  cells and module globals, so class-name constants (``TILE``),
  captured workload parameters (``work``), and live helper objects
  (:class:`~repro.apps.base.ClassFamily`) are all visible.  A call to
  ``family.name_for(i)`` resolves to the family's full name set.
* **Helper inlining** — a call to a host function that receives the
  ``ctx`` value (module-level helpers wrapped by registration lambdas,
  or ``self._phase(ctx)`` methods of the application object) is
  analyzed inline with the caller's argument bindings, attributed to
  the calling class.  Depth- and cycle-guarded.
* **Loop weighting** — facts inside loops carry a multiplicative
  weight so the predicted graph emphasises hot edges.
* **Branch merging** — ``if``/``else`` bind variables to the union of
  both branches, never to one arm only, preserving the superset
  property of downstream resolution.
"""

from __future__ import annotations

import ast
import inspect
from typing import Any, Dict, List, Optional, Tuple

from ..apps.base import ClassFamily, GuestApplication
from ..vm.classloader import ClassRegistry
from ..vm.objectmodel import MethodKind
from .facts import (
    MAIN_CLASS,
    AllocFact,
    ArrayAccessFact,
    ArrayAllocFact,
    ArrayData,
    CallFact,
    Classes,
    CtxRef,
    ElemOf,
    ElemStoreFact,
    FieldAccessFact,
    FieldOf,
    GlobalOf,
    GlobalWriteFact,
    HostRef,
    IntRange,
    MethodFacts,
    NameTables,
    NumConst,
    ParamRef,
    ProgramFacts,
    ReturnFact,
    ReturnOf,
    Scalar,
    StaticAccessFact,
    StrChoice,
    StrConst,
    Unknown,
    ValueRef,
    WorkFact,
    union_of,
)

#: Weight multiplier applied per loop nesting level.
LOOP_WEIGHT = 8
#: Cap on the accumulated loop weight of a single fact.
MAX_WEIGHT = 4096
#: Maximum host-helper inlining depth.
MAX_INLINE_DEPTH = 8

_UNKNOWN = Unknown()
_CTX = CtxRef()
_NONE = Scalar("none")

# -- AST location of callables ----------------------------------------------

_module_cache: Dict[str, Dict[int, List[ast.AST]]] = {}


def _module_index(filename: str) -> Dict[int, List[ast.AST]]:
    """Index every function/lambda node of a source file by line."""
    index = _module_cache.get(filename)
    if index is not None:
        return index
    index = {}
    try:
        with open(filename, "r") as handle:
            tree = ast.parse(handle.read(), filename=filename)
    except (OSError, SyntaxError, ValueError):
        _module_cache[filename] = index
        return index
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            index.setdefault(node.lineno, []).append(node)
    _module_cache[filename] = index
    return index


def function_node(func) -> Optional[ast.AST]:
    """Locate the AST node (def or lambda) backing a callable."""
    code = getattr(func, "__code__", None)
    if code is None:
        return None
    candidates = _module_index(code.co_filename).get(code.co_firstlineno, [])
    if not candidates:
        return None
    argnames = tuple(code.co_varnames[: code.co_argcount])
    for node in candidates:
        args = node.args
        names = tuple(
            a.arg for a in list(getattr(args, "posonlyargs", [])) + args.args
        )
        if names == argnames:
            return node
    return candidates[0]


def _param_names(node: ast.AST) -> List[str]:
    args = node.args
    return [a.arg for a in list(getattr(args, "posonlyargs", [])) + args.args]


def _host_bindings(func) -> Dict[str, Any]:
    """Closure cells + module globals visible to a callable."""
    bindings: Dict[str, Any] = dict(getattr(func, "__globals__", {}) or {})
    code = getattr(func, "__code__", None)
    closure = getattr(func, "__closure__", None)
    if code is not None and closure:
        for name, cell in zip(code.co_freevars, closure):
            try:
                bindings[name] = cell.cell_contents
            except ValueError:
                pass
    return bindings


def _wrap_host(value: Any) -> ValueRef:
    """Describe a live host value as a symbolic reference."""
    if value is None:
        return _NONE
    if isinstance(value, bool):
        return Scalar("bool")
    if isinstance(value, (int, float)):
        return NumConst(value)
    if isinstance(value, str):
        return StrConst(value)
    return HostRef(value)


# -- the walker --------------------------------------------------------------


class _FunctionWalker:
    """Walks one callable's AST, emitting facts into a shared sink."""

    def __init__(
        self,
        sink: MethodFacts,
        owner_class: str,
        env: Dict[str, ValueRef],
        host: Dict[str, Any],
        weight: int = 1,
        depth: int = 0,
        stack: Tuple[Any, ...] = (),
        collect_returns: bool = True,
        loops: int = 0,
        trip_stack: Tuple[Optional[int], ...] = (),
    ) -> None:
        self.sink = sink
        self.owner = owner_class
        self.env = env
        self.host = host
        self.weight = weight
        self.depth = depth
        self.stack = stack
        self.collect_returns = collect_returns
        #: Syntactic loop nesting level, inherited across helper
        #: inlining so inlined sites keep the caller's loop context.
        self.loops = loops
        #: One entry per enclosing loop (outermost first): its constant
        #: trip count, or None when the bound is not statically known.
        #: Inherited across inlining like ``loops``.
        self.trip_stack: List[Optional[int]] = list(trip_stack)
        self.returned: List[ValueRef] = []

    @property
    def trips(self) -> Tuple[Optional[int], ...]:
        return tuple(self.trip_stack)

    # -- statements ---------------------------------------------------------

    def run(self, node: ast.AST) -> List[ValueRef]:
        if isinstance(node, ast.Lambda):
            value = self.eval(node.body)
            self._record_return(value, node.lineno)
        else:
            self.walk_body(node.body)
        return self.returned

    def walk_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            value = self.eval(stmt.value) if stmt.value is not None else _UNKNOWN
            self._assign(stmt.target, value)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                previous = self.env.get(stmt.target.id, _UNKNOWN)
                self.env[stmt.target.id] = union_of(previous, Scalar("int"))
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value) if stmt.value is not None else _NONE
            self._record_return(value, stmt.lineno)
        elif isinstance(stmt, ast.If):
            outcome = self._test_outcome(stmt.test)
            if outcome is True:
                self.walk_body(stmt.body)
            elif outcome is False:
                self.walk_body(stmt.orelse)
            else:
                self._branch((stmt.body, stmt.orelse))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            trip_count, target_ref = self._eval_loop_iter(stmt.iter)
            self._bind_loop_target(stmt.target, stmt.iter, target_ref)
            if trip_count == 0:
                # The range is statically empty with this app's live
                # configuration: the body cannot execute at runtime, so
                # skipping it preserves the superset property.
                self.walk_body(stmt.orelse)
                return
            saved = self.weight
            self.weight = min(self.weight * LOOP_WEIGHT, MAX_WEIGHT)
            self.loops += 1
            self.trip_stack.append(trip_count)
            try:
                self.walk_body(stmt.body)
            finally:
                self.weight = saved
                self.loops -= 1
                self.trip_stack.pop()
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            saved = self.weight
            self.weight = min(self.weight * LOOP_WEIGHT, MAX_WEIGHT)
            self.loops += 1
            self.trip_stack.append(None)
            try:
                self.walk_body(stmt.body)
            finally:
                self.weight = saved
                self.loops -= 1
                self.trip_stack.pop()
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr)
            self.walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.env[stmt.name] = _UNKNOWN
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to extract.

    def _record_return(self, value: ValueRef, line: int) -> None:
        if self.collect_returns:
            self.sink.facts.append(ReturnFact(value=value, line=line))
            self.sink.returns.append(value)
        self.returned.append(value)

    def _branch(self, arms: Tuple[List[ast.stmt], ...]) -> None:
        """Walk each arm on a copy of the env, then merge bindings."""
        base = dict(self.env)
        merged: Dict[str, List[ValueRef]] = {}
        for body in arms:
            self.env = dict(base)
            self.walk_body(body)
            for name, value in self.env.items():
                if base.get(name) is not value:
                    merged.setdefault(name, []).append(value)
        self.env = base
        for name, values in merged.items():
            alternatives = list(values)
            if name in base:
                alternatives.append(base[name])
            else:
                alternatives.append(_UNKNOWN)
            self.env[name] = union_of(*alternatives)

    def _assign(self, target: ast.expr, value: ValueRef) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            self.eval(target.slice)
            if isinstance(base, ArrayData):
                self.sink.facts.append(
                    ElemStoreFact(
                        container=base.container, value=value,
                        weight=self.weight, line=target.lineno,
                        depth=self.loops, trips=self.trips,
                    )
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, _UNKNOWN)
        # Attribute targets are host-object mutation; nothing to extract.

    def _eval_loop_iter(
        self, iterable: ast.expr
    ) -> Tuple[Any, Optional[ValueRef]]:
        """Evaluate a for-loop's iterable exactly once.

        Returns ``(trip_count, target_ref)``: the loop's constant trip
        count when every ``range`` argument folds to an integer
        constant, the bound's symbolic reference for a single-argument
        ``range`` over a parameter-dependent value (the dataflow pass
        resolves it through call-site bindings), or ``None``; plus an
        :class:`IntRange` covering the loop variable for constant
        ranges.
        """
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
            and not iterable.keywords
            and 1 <= len(iterable.args) <= 3
        ):
            parts = [self.eval(arg) for arg in iterable.args]
            values: List[int] = []
            for part in parts:
                if not (
                    isinstance(part, NumConst)
                    and float(part.value) == int(part.value)
                ):
                    if len(parts) == 1 and not isinstance(
                        part, (Unknown, Scalar, CtxRef)
                    ):
                        return part, None
                    return None, None
                values.append(int(part.value))
            if len(values) == 3 and values[2] == 0:
                return None, None
            span = range(*values)
            if len(span) == 0:
                return 0, None
            return len(span), IntRange(min(span[0], span[-1]),
                                       max(span[0], span[-1]))
        self.eval(iterable)
        return None, None

    def _bind_loop_target(
        self,
        target: ast.expr,
        iterable: ast.expr,
        target_ref: Optional[ValueRef] = None,
    ) -> None:
        scalar_iter = (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("range", "enumerate")
        )
        if isinstance(target, ast.Name):
            if target_ref is not None:
                self.env[target.id] = target_ref
            else:
                self.env[target.id] = Scalar("int") if scalar_iter else _UNKNOWN
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, _UNKNOWN)

    def _test_outcome(self, test: ast.expr) -> Optional[bool]:
        """Evaluate an ``if`` test exactly once; decide it when possible.

        Only single comparisons whose operands are numeric constants or
        loop-variable intervals are decided; everything else evaluates
        for nested facts and returns ``None`` (walk both arms).
        """
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = self._test_outcome(test.operand)
            return None if inner is None else (not inner)
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left = self.eval(test.left)
            right = self.eval(test.comparators[0])
            return _compare_outcome(test.ops[0], left, right)
        self.eval(test)
        return None

    # -- expressions --------------------------------------------------------

    def eval(self, node: Optional[ast.expr]) -> ValueRef:
        if node is None:
            return _NONE
        if isinstance(node, ast.Constant):
            return self._eval_constant(node.value)
        if isinstance(node, ast.Name):
            return self._eval_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand)
            if isinstance(operand, NumConst) and isinstance(node.op, ast.USub):
                return NumConst(-operand.value)
            return operand if isinstance(operand, (NumConst, Scalar)) else _UNKNOWN
        if isinstance(node, ast.BoolOp):
            return union_of(*[self.eval(value) for value in node.values])
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for comparator in node.comparators:
                self.eval(comparator)
            return Scalar("bool")
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return union_of(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self.eval(element)
            return _UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.eval(key)
            for value in node.values:
                self.eval(value)
            return _UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.eval(value.value)
            return Scalar("str")
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._eval_comprehension(node.generators, [node.elt])
            return _UNKNOWN
        if isinstance(node, ast.DictComp):
            self._eval_comprehension(node.generators, [node.key, node.value])
            return _UNKNOWN
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Lambda):
            return _UNKNOWN
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part)
            return _UNKNOWN
        return _UNKNOWN

    def _eval_comprehension(self, generators, expressions) -> None:
        saved = self.weight
        self.weight = min(self.weight * LOOP_WEIGHT, MAX_WEIGHT)
        self.loops += 1
        self.trip_stack.append(None)
        try:
            for generator in generators:
                self.eval(generator.iter)
                self._assign(generator.target, _UNKNOWN)
                for condition in generator.ifs:
                    self.eval(condition)
            for expression in expressions:
                self.eval(expression)
        finally:
            self.weight = saved
            self.loops -= 1
            self.trip_stack.pop()

    @staticmethod
    def _eval_constant(value: Any) -> ValueRef:
        if value is None:
            return _NONE
        if isinstance(value, bool):
            return Scalar("bool")
        if isinstance(value, (int, float)):
            return NumConst(value)
        if isinstance(value, str):
            return StrConst(value)
        return _UNKNOWN

    def _eval_name(self, name: str) -> ValueRef:
        if name in self.env:
            return self.env[name]
        if name in self.host:
            return _wrap_host(self.host[name])
        builtins_ns = self.host.get("__builtins__")
        if builtins_ns is not None:
            if isinstance(builtins_ns, dict):
                if name in builtins_ns:
                    return HostRef(builtins_ns[name])
            elif hasattr(builtins_ns, name):
                return HostRef(getattr(builtins_ns, name))
        return _UNKNOWN

    def _eval_attribute(self, node: ast.Attribute) -> ValueRef:
        base = self.eval(node.value)
        if isinstance(base, HostRef):
            try:
                return _wrap_host(getattr(base.obj, node.attr))
            except Exception:
                return _UNKNOWN
        if node.attr == "data":
            return ArrayData(base)
        if node.attr == "length":
            return Scalar("int")
        return _UNKNOWN

    def _eval_subscript(self, node: ast.Subscript) -> ValueRef:
        base = self.eval(node.value)
        self.eval(node.slice)
        if isinstance(base, ArrayData):
            return ElemOf(base.container)
        return _UNKNOWN

    def _eval_binop(self, node: ast.BinOp) -> ValueRef:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(left, NumConst) and isinstance(right, NumConst):
            folded = _fold_binop(node.op, left.value, right.value)
            if folded is not None:
                return NumConst(folded)
        if isinstance(left, IntRange) or isinstance(right, IntRange):
            span = _interval_binop(node.op, _interval(left), _interval(right))
            if span is not None:
                return span
        if isinstance(left, (StrConst, Scalar)) and getattr(left, "kind", "str") == "str":
            return Scalar("str")
        return Scalar("int")

    # -- calls --------------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> ValueRef:
        # Guest API calls: ctx.<api>(...)
        if isinstance(node.func, ast.Attribute):
            base = self.eval(node.func.value)
            if isinstance(base, CtxRef):
                return self._eval_ctx_call(node, node.func.attr)
            callee = self._attribute_callable(base, node.func.attr)
        else:
            callee = self.eval(node.func)

        args = [self.eval(arg) for arg in node.args]
        for keyword in node.keywords:
            self.eval(keyword.value)

        if isinstance(callee, HostRef):
            return self._eval_host_call(callee.obj, args)
        return _UNKNOWN

    def _attribute_callable(self, base: ValueRef, attr: str) -> ValueRef:
        if isinstance(base, HostRef):
            try:
                return _wrap_host(getattr(base.obj, attr))
            except Exception:
                return _UNKNOWN
        return _UNKNOWN

    def _eval_host_call(self, obj: Any, args: List[ValueRef]) -> ValueRef:
        bound_self = getattr(obj, "__self__", None)
        # family.name_for(i): one of the family's class names.
        if isinstance(bound_self, ClassFamily) and getattr(obj, "__name__", "") == "name_for":
            return StrChoice(frozenset(bound_self.names))
        # Host helpers that receive ctx are analyzed inline.
        if any(isinstance(arg, CtxRef) for arg in args):
            func = obj
            if bound_self is not None:
                func = obj.__func__
                args = [_wrap_host(bound_self)] + args
            if inspect.isfunction(func):
                return self._inline(func, args)
        return _UNKNOWN

    def _inline(self, func, args: List[ValueRef]) -> ValueRef:
        code = getattr(func, "__code__", None)
        if code is None or code in self.stack or self.depth >= MAX_INLINE_DEPTH:
            return _UNKNOWN
        node = function_node(func)
        if node is None:
            return _UNKNOWN
        params = _param_names(node)
        env: Dict[str, ValueRef] = {}
        for index, name in enumerate(params):
            env[name] = args[index] if index < len(args) else _UNKNOWN
        walker = _FunctionWalker(
            sink=self.sink,
            owner_class=self.owner,
            env=env,
            host=_host_bindings(func),
            weight=self.weight,
            depth=self.depth + 1,
            stack=self.stack + (code,),
            collect_returns=False,
            loops=self.loops,
            trip_stack=self.trips,
        )
        returned = walker.run(node)
        return union_of(*returned) if returned else _NONE

    # -- the guest ctx API --------------------------------------------------

    def _eval_ctx_call(self, node: ast.Call, api: str) -> ValueRef:
        line = node.lineno
        if api == "new":
            class_ref = self.eval(node.args[0]) if node.args else _UNKNOWN
            names = _class_names(class_ref)
            field_values = {}
            for keyword in node.keywords:
                if keyword.arg is not None:
                    field_values[keyword.arg] = self.eval(keyword.value)
            self.sink.facts.append(
                AllocFact(class_names=names, field_values=field_values,
                          weight=self.weight, line=line, depth=self.loops, trips=self.trips)
            )
            return Classes(names) if names else _UNKNOWN
        if api == "new_array":
            element_ref = self.eval(node.args[0]) if node.args else _UNKNOWN
            length_ref = self.eval(node.args[1]) if len(node.args) > 1 else _UNKNOWN
            for keyword in node.keywords:
                self.eval(keyword.value)
            element = element_ref.text if isinstance(element_ref, StrConst) else None
            length = (
                int(length_ref.value) if isinstance(length_ref, NumConst) else None
            )
            self.sink.facts.append(
                ArrayAllocFact(element_type=element, length=length,
                               weight=self.weight, line=line, depth=self.loops, trips=self.trips)
            )
            if element is not None:
                return Classes(frozenset((f"{element}[]",)))
            return _UNKNOWN
        if api == "invoke":
            receiver = self.eval(node.args[0]) if node.args else _UNKNOWN
            method_ref = self.eval(node.args[1]) if len(node.args) > 1 else _UNKNOWN
            passed = tuple(self.eval(arg) for arg in node.args[2:])
            if not isinstance(method_ref, StrConst):
                return _UNKNOWN
            self.sink.facts.append(
                CallFact(receiver=receiver, method=method_ref.text,
                         is_static=False, nargs=len(node.args) - 2,
                         weight=self.weight, line=line, depth=self.loops, trips=self.trips,
                         args=passed)
            )
            return ReturnOf(receiver, method_ref.text)
        if api == "invoke_static":
            class_ref = self.eval(node.args[0]) if node.args else _UNKNOWN
            method_ref = self.eval(node.args[1]) if len(node.args) > 1 else _UNKNOWN
            passed = tuple(self.eval(arg) for arg in node.args[2:])
            if not isinstance(method_ref, StrConst):
                return _UNKNOWN
            names = _class_names(class_ref)
            receiver: ValueRef = Classes(names) if names else _UNKNOWN
            const_name = class_ref.text if isinstance(class_ref, StrConst) else None
            self.sink.facts.append(
                CallFact(receiver=receiver, method=method_ref.text,
                         is_static=True, class_name=const_name,
                         nargs=len(node.args) - 2,
                         weight=self.weight, line=line, depth=self.loops, trips=self.trips,
                         args=passed)
            )
            return ReturnOf(receiver, method_ref.text)
        if api in ("get_field", "set_field"):
            receiver = self.eval(node.args[0]) if node.args else _UNKNOWN
            field_ref = self.eval(node.args[1]) if len(node.args) > 1 else _UNKNOWN
            value = self.eval(node.args[2]) if len(node.args) > 2 else None
            if not isinstance(field_ref, StrConst):
                return _UNKNOWN
            is_write = api == "set_field"
            self.sink.facts.append(
                FieldAccessFact(receiver=receiver, field=field_ref.text,
                                is_write=is_write, value=value,
                                weight=self.weight, line=line, depth=self.loops, trips=self.trips)
            )
            if is_write:
                return _NONE
            return FieldOf(receiver, field_ref.text)
        if api in ("get_static", "set_static"):
            class_ref = self.eval(node.args[0]) if node.args else _UNKNOWN
            field_ref = self.eval(node.args[1]) if len(node.args) > 1 else _UNKNOWN
            value = self.eval(node.args[2]) if len(node.args) > 2 else None
            if not isinstance(field_ref, StrConst):
                return _UNKNOWN
            const_name = class_ref.text if isinstance(class_ref, StrConst) else None
            is_write = api == "set_static"
            self.sink.facts.append(
                StaticAccessFact(class_name=const_name, field=field_ref.text,
                                 is_write=is_write, value=value,
                                 weight=self.weight, line=line, depth=self.loops, trips=self.trips)
            )
            if is_write:
                return _NONE
            owner: ValueRef = (
                Classes(frozenset((const_name,))) if const_name else _UNKNOWN
            )
            return FieldOf(owner, field_ref.text)
        if api in ("array_read", "array_write"):
            array = self.eval(node.args[0]) if node.args else _UNKNOWN
            count_ref = self.eval(node.args[1]) if len(node.args) > 1 else None
            count = (
                int(count_ref.value) if isinstance(count_ref, NumConst) else None
            )
            self.sink.facts.append(
                ArrayAccessFact(array=array, is_write=api == "array_write",
                                count=count, weight=self.weight, line=line,
                                depth=self.loops, trips=self.trips,
                                count_ref=count_ref if count is None else None)
            )
            return _NONE
        if api == "work":
            seconds_ref = self.eval(node.args[0]) if node.args else None
            seconds = (
                float(seconds_ref.value)
                if isinstance(seconds_ref, NumConst) else None
            )
            self.sink.facts.append(
                WorkFact(seconds=seconds, weight=self.weight, line=line, depth=self.loops, trips=self.trips)
            )
            return _NONE
        if api == "set_global":
            name_ref = self.eval(node.args[0]) if node.args else _UNKNOWN
            value = self.eval(node.args[1]) if len(node.args) > 1 else _UNKNOWN
            if isinstance(name_ref, StrConst):
                self.sink.facts.append(
                    GlobalWriteFact(name=name_ref.text, value=value,
                                    weight=self.weight, line=line, depth=self.loops, trips=self.trips)
                )
            return _NONE
        if api == "get_global":
            name_ref = self.eval(node.args[0]) if node.args else _UNKNOWN
            if isinstance(name_ref, StrConst):
                return GlobalOf(name_ref.text)
            return _UNKNOWN
        if api == "retain":
            return self.eval(node.args[0]) if node.args else _UNKNOWN
        # Unknown ctx API: evaluate arguments for nested facts.
        for arg in node.args:
            self.eval(arg)
        for keyword in node.keywords:
            self.eval(keyword.value)
        return _UNKNOWN


def _class_names(ref: ValueRef):
    if isinstance(ref, StrConst):
        return frozenset((ref.text,))
    if isinstance(ref, StrChoice):
        return ref.options
    return None


def _interval(ref: ValueRef) -> Optional[Tuple[int, int]]:
    """Integer bounds of a reference, when statically known."""
    if isinstance(ref, IntRange):
        return (ref.lo, ref.hi)
    if isinstance(ref, NumConst) and float(ref.value) == int(ref.value):
        value = int(ref.value)
        return (value, value)
    return None


def _interval_binop(
    op: ast.operator,
    left: Optional[Tuple[int, int]],
    right: Optional[Tuple[int, int]],
) -> Optional[ValueRef]:
    """Interval arithmetic for loop-variable expressions."""
    if left is None or right is None:
        return None
    lo_l, hi_l = left
    lo_r, hi_r = right
    if isinstance(op, ast.Add):
        lo, hi = lo_l + lo_r, hi_l + hi_r
    elif isinstance(op, ast.Sub):
        lo, hi = lo_l - hi_r, hi_l - lo_r
    elif isinstance(op, ast.Mult):
        corners = (lo_l * lo_r, lo_l * hi_r, hi_l * lo_r, hi_l * hi_r)
        lo, hi = min(corners), max(corners)
    elif isinstance(op, ast.Mod) and lo_r == hi_r and lo_r > 0:
        lo, hi = 0, lo_r - 1
    elif isinstance(op, ast.FloorDiv) and lo_r == hi_r and lo_r > 0:
        lo, hi = lo_l // lo_r, hi_l // lo_r
    else:
        return None
    if lo == hi:
        return NumConst(lo)
    return IntRange(lo, hi)


def _compare_outcome(
    op: ast.cmpop, left: ValueRef, right: ValueRef
) -> Optional[bool]:
    """Decide a comparison between two statically bounded integers."""
    a = _interval(left)
    b = _interval(right)
    if a is None or b is None:
        return None
    lo_l, hi_l = a
    lo_r, hi_r = b
    if isinstance(op, ast.Lt):
        if hi_l < lo_r:
            return True
        if lo_l >= hi_r:
            return False
    elif isinstance(op, ast.LtE):
        if hi_l <= lo_r:
            return True
        if lo_l > hi_r:
            return False
    elif isinstance(op, ast.Gt):
        if lo_l > hi_r:
            return True
        if hi_l <= lo_r:
            return False
    elif isinstance(op, ast.GtE):
        if lo_l >= hi_r:
            return True
        if hi_l < lo_r:
            return False
    elif isinstance(op, ast.Eq):
        if lo_l == hi_l == lo_r == hi_r:
            return True
        if hi_l < lo_r or hi_r < lo_l:
            return False
    elif isinstance(op, ast.NotEq):
        if lo_l == hi_l == lo_r == hi_r:
            return False
        if hi_l < lo_r or hi_r < lo_l:
            return True
    return None


def _fold_binop(op: ast.operator, left: float, right: float) -> Optional[float]:
    try:
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.Div):
            return left / right
        if isinstance(op, ast.FloorDiv):
            return left // right
        if isinstance(op, ast.Mod):
            return left % right
        if isinstance(op, ast.Pow):
            return left ** right
    except (ZeroDivisionError, OverflowError, ValueError):
        return None
    return None


# -- program extraction ------------------------------------------------------


def extract_method(class_def, mdef) -> MethodFacts:
    """Extract facts from one registered method body."""
    sink = MethodFacts(
        class_name=class_def.name,
        method_name=mdef.name,
        kind=mdef.kind.value,
    )
    func = mdef.func
    if func is None:
        return sink
    node = function_node(func)
    if node is None:
        return sink
    code = func.__code__
    sink.source_file = code.co_filename
    sink.source_line = code.co_firstlineno
    params = _param_names(node)
    env: Dict[str, ValueRef] = {}
    for index, name in enumerate(params):
        if index == 0:
            env[name] = _CTX
        elif index == 1:
            if mdef.kind is MethodKind.STATIC:
                env[name] = _NONE
            else:
                env[name] = Classes(frozenset((class_def.name,)))
        else:
            env[name] = ParamRef(index - 2)
    walker = _FunctionWalker(
        sink=sink, owner_class=class_def.name, env=env,
        host=_host_bindings(func), stack=(code,),
    )
    walker.run(node)
    sink.analyzed = True
    return sink


def extract_main(app: GuestApplication) -> MethodFacts:
    """Extract facts from the application entry point as ``<main>``."""
    sink = MethodFacts(class_name=MAIN_CLASS, method_name="main", kind="main")
    func = type(app).main
    node = function_node(func)
    if node is None:
        return sink
    code = func.__code__
    sink.source_file = code.co_filename
    sink.source_line = code.co_firstlineno
    params = _param_names(node)
    env: Dict[str, ValueRef] = {}
    for index, name in enumerate(params):
        if index == 0:
            env[name] = HostRef(app)
        elif index == 1:
            env[name] = _CTX
        else:
            env[name] = _UNKNOWN
    walker = _FunctionWalker(
        sink=sink, owner_class=MAIN_CLASS, env=env,
        host=_host_bindings(func), stack=(code,),
    )
    walker.run(node)
    sink.analyzed = True
    return sink


def extract_program(
    registry: ClassRegistry,
    app: Optional[GuestApplication] = None,
    app_name: Optional[str] = None,
) -> ProgramFacts:
    """Extract facts for every registered class (plus the app's main)."""
    name = app_name or (app.name if app is not None else "<registry>")
    program = ProgramFacts(
        app_name=name,
        registry=registry,
        name_tables=NameTables.from_registry(registry),
    )
    for class_def in registry.app_classes():
        for mdef in class_def.methods():
            program.methods[(class_def.name, mdef.name)] = extract_method(
                class_def, mdef
            )
    if app is not None:
        program.methods[(MAIN_CLASS, "main")] = extract_main(app)
    return program
