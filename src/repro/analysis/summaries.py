"""Per-method traffic summaries with configurable loop-depth weighting.

The extractor records every site's raw syntactic loop nesting level
(``fact.depth``).  This module turns each method's fact list into a
:class:`MethodSummary`: the same sites annotated with a *local weight*
``B ** depth`` for a configurable base ``B`` (:class:`SummaryConfig`),
plus aggregate read/write/invoke totals.  Local weights estimate how
often a site runs **per invocation of its method**; the interprocedural
fixpoint in :mod:`repro.analysis.dataflow` multiplies them by predicted
method call frequencies to obtain program-wide site rates.

Keeping the depth → weight conversion here (instead of baking it into
extraction, as the legacy ``fact.weight`` does with a fixed base of 8)
lets callers sweep the base without re-walking any AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .facts import (
    ArrayAccessFact,
    CallFact,
    FieldAccessFact,
    ProgramFacts,
    StaticAccessFact,
    WorkFact,
)

__all__ = [
    "SummaryConfig", "SummarySite", "MethodSummary",
    "site_weight", "fact_weight", "build_summaries",
]


@dataclass(frozen=True)
class SummaryConfig:
    """Knobs for converting loop depth into site weight."""

    #: Per-loop-level multiplier B: a site inside k nested loops
    #: contributes B**k weight.  The default matches the extractor's
    #: legacy LOOP_WEIGHT so unweighted and weighted pipelines agree on
    #: relative emphasis when left untouched.
    loop_base: float = 8.0
    #: Cap on one site's local weight (mirrors the extractor's
    #: MAX_WEIGHT guard against pathological nesting).
    max_site_weight: float = 4096.0
    #: Element count assumed for array accesses whose count neither is
    #: a literal nor resolves through the dataflow pass.
    default_array_count: int = 8

    def __post_init__(self) -> None:
        if self.loop_base < 1.0:
            raise ValueError("loop_base must be >= 1")
        if self.max_site_weight < 1.0:
            raise ValueError("max_site_weight must be >= 1")


def site_weight(depth: int, config: SummaryConfig) -> float:
    """Local weight of a site nested under ``depth`` loops."""
    if depth <= 0:
        return 1.0
    return min(config.loop_base ** depth, config.max_site_weight)


def fact_weight(fact, config: SummaryConfig) -> float:
    """Local weight of a fact, using constant trip counts when known.

    Each enclosing loop contributes its statically known trip count
    (from a constant-``range`` bound), falling back to ``loop_base``
    for loops whose bound the extractor could not fold.  Symbolic trip
    bounds (a :class:`~repro.analysis.facts.ValueRef`) also fall back
    here — only the dataflow pass holds the call-site bindings needed
    to resolve them.
    """
    depth = getattr(fact, "depth", 0)
    if depth <= 0:
        return 1.0
    trips = getattr(fact, "trips", ())
    weight = 1.0
    for level in range(depth):
        trip = trips[level] if level < len(trips) else None
        if isinstance(trip, (int, float)):
            weight *= float(trip)
        else:
            weight *= config.loop_base
        if weight >= config.max_site_weight:
            return config.max_site_weight
    return max(weight, 1.0)


@dataclass(frozen=True)
class SummarySite:
    """One extracted fact with its per-invocation weight."""

    fact: object
    local_weight: float


@dataclass
class MethodSummary:
    """Weighted read/write/invoke digest of one method body."""

    class_name: str
    method_name: str
    calls: List[SummarySite] = field(default_factory=list)
    field_accesses: List[SummarySite] = field(default_factory=list)
    static_accesses: List[SummarySite] = field(default_factory=list)
    array_accesses: List[SummarySite] = field(default_factory=list)
    works: List[SummarySite] = field(default_factory=list)
    #: Weighted per-invocation totals (reads/writes count field, static
    #: and array accesses; invokes count call sites).
    read_weight: float = 0.0
    write_weight: float = 0.0
    invoke_weight: float = 0.0

    @property
    def key(self) -> Tuple[str, str]:
        return (self.class_name, self.method_name)

    def sites(self) -> Iterator[SummarySite]:
        yield from self.calls
        yield from self.field_accesses
        yield from self.static_accesses
        yield from self.array_accesses
        yield from self.works


def summarize_method(
    class_name: str,
    method_name: str,
    facts,
    config: SummaryConfig,
) -> MethodSummary:
    summary = MethodSummary(class_name=class_name, method_name=method_name)
    for fact in facts:
        weight = fact_weight(fact, config)
        site = SummarySite(fact=fact, local_weight=weight)
        if isinstance(fact, CallFact):
            summary.calls.append(site)
            summary.invoke_weight += weight
        elif isinstance(fact, FieldAccessFact):
            summary.field_accesses.append(site)
            if fact.is_write:
                summary.write_weight += weight
            else:
                summary.read_weight += weight
        elif isinstance(fact, StaticAccessFact):
            summary.static_accesses.append(site)
            if fact.is_write:
                summary.write_weight += weight
            else:
                summary.read_weight += weight
        elif isinstance(fact, ArrayAccessFact):
            summary.array_accesses.append(site)
            if fact.is_write:
                summary.write_weight += weight
            else:
                summary.read_weight += weight
        elif isinstance(fact, WorkFact):
            summary.works.append(site)
    return summary


def build_summaries(
    program: ProgramFacts,
    config: Optional[SummaryConfig] = None,
) -> Dict[Tuple[str, str], MethodSummary]:
    """Summarize every extracted method body of a program."""
    config = config or SummaryConfig()
    summaries: Dict[Tuple[str, str], MethodSummary] = {}
    for mf in program.iter_methods():
        summaries[(mf.class_name, mf.method_name)] = summarize_method(
            mf.class_name, mf.method_name, mf.facts, config
        )
    return summaries
