"""Static placement analysis (AIDE-Lint).

Ahead-of-time analysis of guest applications: AST fact extraction,
program-wide reference resolution, a predicted interaction graph with
cold-start placement seeding, a static pinning closure, and the
AIDE-Lint diagnostic rules.  Entry point: :func:`analyze_app` (the
``python -m repro analyze`` subcommand).
"""

from .extractor import extract_main, extract_method, extract_program
from .facts import MAIN_CLASS, MethodFacts, NameTables, ProgramFacts
from .lint import Diagnostic, has_errors, lint_program
from .pinning import PinningClosure, compute_pinning
from .report import (
    SCHEMA,
    AnalysisReport,
    analyze_app,
    analyze_registry,
    application_factories,
)
from .staticgraph import (
    Resolver,
    StaticAnalysis,
    analyze_program,
    predict_graph,
)

__all__ = [
    "MAIN_CLASS",
    "AnalysisReport",
    "Diagnostic",
    "MethodFacts",
    "NameTables",
    "PinningClosure",
    "ProgramFacts",
    "Resolver",
    "SCHEMA",
    "StaticAnalysis",
    "analyze_app",
    "analyze_program",
    "analyze_registry",
    "application_factories",
    "compute_pinning",
    "extract_main",
    "extract_method",
    "extract_program",
    "has_errors",
    "lint_program",
    "predict_graph",
]
