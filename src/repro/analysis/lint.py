"""AIDE-Lint: placement-aware diagnostics for guest applications.

Rules are grouped by severity band:

====== ======== ==========================================================
Code   Severity Meaning
====== ======== ==========================================================
AL101  error    unknown class name at an allocation/static-call site
AL102  error    no registered class defines the invoked method
AL103  error    no registered class defines the accessed field
AL104  error    ``invoke_static`` of a non-static method
AL201  warning  value stored into a field of an incompatible declared type
AL202  warning  static-field write from offloadable code (client round-trip)
AL203  warning  call into a stateful native from an offloadable class
AL204  warning  cross-cluster shared class (the paper's Dia pathology)
AL301  info     declared field never accessed anywhere in the program
AL302  info     registered class never allocated, invoked, or accessed
AL303  info     class name at this site is not a compile-time constant
AL401  warning  read-modify-write of a remote field inside a loop
AL402  warning  per-element access to a remote-majority array in a loop
AL403  warning  field only ever written, and written across the boundary
AL404  warning  mutable static reached from both placement clusters
====== ======== ==========================================================

Error-band rules find code the runtime would reject
(``NoSuchClassError`` / ``NoSuchMethodError`` / ``NoSuchFieldError``);
the CI lint gate fails on them.  Warning-band rules flag placement
pathologies that are *legal* but costly — several fire intentionally on
the bundled apps because they reproduce the paper's native-bounce and
shared-scratch effects.  Info-band rules are hygiene.

The AL4xx band (chatty-interface diagnostics) is powered by the
interprocedural dataflow pass: each finding quotes the *predicted*
byte and round-trip cost of the pattern, computed from method call
frequencies and loop trip counts.  The rules are tuned to stay silent
on the six bundled apps — their cross-partition traffic is bulk
transfers and intentional pathologies already covered by AL2xx — while
firing on genuinely chatty shapes (element-at-a-time remote loops,
blind remote writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from ..vm.objectmodel import MethodKind, array_class_name, suggest_name
from .dataflow import substitute
from .facts import (
    MAIN_CLASS,
    AllocFact,
    ArrayAccessFact,
    ArrayAllocFact,
    CallFact,
    Classes,
    FieldAccessFact,
    MethodFacts,
    NumConst,
    ProgramFacts,
    Scalar,
    StaticAccessFact,
    StrChoice,
    StrConst,
    ValueRef,
)
from .staticgraph import ACCESS_BYTES, Resolver, StaticAnalysis

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: AL402 fires only when the per-element site is predicted to run at
#: least this often per program run — cold loops are not worth a
#: restructuring warning.
AL402_MIN_RATE = 32.0
#: AL403/AL404 fire only above this much predicted wire traffic.
AL4XX_MIN_BYTES = 64.0

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

#: One-line summary per rule code (mirrors the module docstring table;
#: rendered into SARIF rule metadata and the docs).
RULE_SUMMARIES = {
    "AL101": "allocation or static call names a class that does not exist",
    "AL102": "invocation names a method the receiver cannot have",
    "AL103": "field access names a field the owner cannot have",
    "AL104": "static invocation of an instance method (or vice versa)",
    "AL201": "value stored into a field of an incompatible declared type",
    "AL202": "static-field write from offloadable code (client round-trip)",
    "AL203": "call into a stateful native from an offloadable class",
    "AL204": "cross-cluster shared class (the paper's Dia pathology)",
    "AL301": "declared field never accessed anywhere in the program",
    "AL302": "registered class never allocated, invoked, or accessed",
    "AL303": "class name at this site is not a compile-time constant",
    "AL401": "read-modify-write of a remote field inside a loop",
    "AL402": "per-element access to a remote-majority array in a loop",
    "AL403": "field only ever written, and written across the boundary",
    "AL404": "mutable static reached from both placement clusters",
}

#: Primitive field type names (everything else is reference-typed).
_PRIMITIVE_TYPES = frozenset(
    ("int", "long", "float", "double", "bool", "byte", "char", "short")
)
_NUMERIC_TYPES = _PRIMITIVE_TYPES - {"char"}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding with a stable rule code."""

    rule: str
    severity: str
    message: str
    class_name: str
    method_name: str
    line: int = 0
    source_file: Optional[str] = None

    def sort_key(self):
        return (
            _SEVERITY_ORDER[self.severity], self.rule,
            self.class_name, self.method_name, self.line, self.message,
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "class": self.class_name,
            "method": self.method_name,
            "line": self.line,
            "file": self.source_file,
        }


class Linter:
    """Runs every rule over one program's facts."""

    def __init__(self, analysis: StaticAnalysis) -> None:
        self.analysis = analysis
        self.program: ProgramFacts = analysis.program
        self.resolver: Resolver = analysis.resolver
        self.registry = self.program.registry
        self.tables = self.program.name_tables
        self.diagnostics: List[Diagnostic] = []
        self._pinned = frozenset(
            self.program.native_method_classes()
        ) | {MAIN_CLASS}

    # -- helpers --------------------------------------------------------------

    def _emit(
        self, mf: MethodFacts, rule: str, severity: str, message: str,
        line: int,
    ) -> None:
        self.diagnostics.append(Diagnostic(
            rule=rule, severity=severity, message=message,
            class_name=mf.class_name, method_name=mf.method_name,
            line=line, source_file=mf.source_file,
        ))

    @staticmethod
    def _const_names(ref: ValueRef) -> Optional[FrozenSet[str]]:
        if isinstance(ref, StrConst):
            return frozenset((ref.text,))
        if isinstance(ref, StrChoice):
            return ref.options
        return None

    # -- the run --------------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        self.diagnostics = []
        for mf in self.program.iter_methods():
            for fact in mf.facts:
                if isinstance(fact, AllocFact):
                    self._check_alloc(mf, fact)
                elif isinstance(fact, ArrayAllocFact):
                    self._check_array_alloc(mf, fact)
                elif isinstance(fact, CallFact):
                    self._check_call(mf, fact)
                elif isinstance(fact, FieldAccessFact):
                    self._check_field_access(mf, fact)
                elif isinstance(fact, StaticAccessFact):
                    self._check_static_access(mf, fact)
        self._check_shared_classes()
        self._check_unused()
        self._check_dataflow()
        self.diagnostics.sort(key=Diagnostic.sort_key)
        self._dedupe_al303()
        return self.diagnostics

    def _dedupe_al303(self) -> None:
        """One non-constant-name site, one AL303 diagnostic.

        Helper inlining replays a shared helper's body once per caller,
        so the same source line would otherwise report once for every
        class that inlines it.
        """
        seen: Set[tuple] = set()
        kept: List[Diagnostic] = []
        for diag in self.diagnostics:
            if diag.rule == "AL303":
                site = (diag.source_file, diag.line, diag.message)
                if site in seen:
                    continue
                seen.add(site)
            kept.append(diag)
        self.diagnostics = kept

    # -- AL101/AL303: class names ---------------------------------------------

    def _check_alloc(self, mf: MethodFacts, fact: AllocFact) -> None:
        if fact.class_names is None:
            self._emit(
                mf, "AL303", INFO,
                "allocation class name is not a compile-time constant",
                fact.line,
            )
            return
        known = []
        for name in sorted(fact.class_names):
            if not self.registry.has_class(name):
                hint = suggest_name(name, self.registry.class_names())
                self._emit(
                    mf, "AL101", ERROR,
                    f"allocation of unknown class {name!r}{hint}",
                    fact.line,
                )
            else:
                known.append(name)
        for field_name, value in fact.field_values.items():
            owners = [n for n in known
                      if self.registry.lookup(n).has_field(field_name)]
            if known and not owners:
                declared: Set[str] = set()
                for n in known:
                    declared.update(self.registry.lookup(n).field_names())
                hint = suggest_name(field_name, declared)
                self._emit(
                    mf, "AL103", ERROR,
                    f"allocation keyword {field_name!r} matches no field "
                    f"of {', '.join(known)}{hint}", fact.line,
                )
            elif owners:
                self._check_type(mf, owners, field_name, value, fact.line)

    def _check_array_alloc(self, mf: MethodFacts, fact: ArrayAllocFact) -> None:
        if fact.element_type is None:
            self._emit(
                mf, "AL303", INFO,
                "array element type is not a compile-time constant",
                fact.line,
            )
            return
        if not self.registry.has_class(array_class_name(fact.element_type)):
            self._emit(
                mf, "AL101", ERROR,
                f"array allocation of unknown element type "
                f"{fact.element_type!r}", fact.line,
            )

    # -- AL102/AL104/AL203: calls ---------------------------------------------

    def _check_call(self, mf: MethodFacts, fact: CallFact) -> None:
        owners = self.tables.method_owners.get(fact.method, frozenset())
        if fact.is_static:
            if fact.class_name is None:
                const = self._const_names(fact.receiver)
                if const is None:
                    self._emit(
                        mf, "AL303", INFO,
                        f"static call target for {fact.method!r} is not a "
                        f"compile-time constant", fact.line,
                    )
            else:
                if not self.registry.has_class(fact.class_name):
                    hint = suggest_name(fact.class_name,
                                        self.registry.class_names())
                    self._emit(
                        mf, "AL101", ERROR,
                        f"static call on unknown class "
                        f"{fact.class_name!r}{hint}", fact.line,
                    )
                    return
                cls = self.registry.lookup(fact.class_name)
                if not cls.has_method(fact.method):
                    hint = suggest_name(fact.method, cls.method_names())
                    self._emit(
                        mf, "AL102", ERROR,
                        f"class {fact.class_name!r} has no method "
                        f"{fact.method!r}{hint}", fact.line,
                    )
                    return
                mdef = cls.method(fact.method)
                if mdef.kind is MethodKind.INSTANCE:
                    self._emit(
                        mf, "AL104", ERROR,
                        f"invoke_static of instance method "
                        f"{fact.class_name}.{fact.method}", fact.line,
                    )
        elif not owners:
            hint = suggest_name(fact.method, self.tables.method_owners)
            self._emit(
                mf, "AL102", ERROR,
                f"no registered class defines method {fact.method!r}{hint}",
                fact.line,
            )
            return
        self._check_native_transition(mf, fact)

    def _check_native_transition(self, mf: MethodFacts, fact: CallFact) -> None:
        if mf.class_name in self._pinned:
            return
        stateful_sites = self.program.stateful_native_sites()
        candidates = self.resolver.invoke_candidates(
            fact.receiver, fact.method
        )
        bounce = sorted(
            cls for cls in candidates
            if stateful_sites.get((cls, fact.method))
        )
        if bounce:
            self._emit(
                mf, "AL203", WARNING,
                f"offloadable class calls stateful native "
                f"{bounce[0]}.{fact.method}; every remote call bounces "
                f"back to the client", fact.line,
            )

    # -- AL103/AL201/AL202: fields --------------------------------------------

    def _check_field_access(self, mf: MethodFacts, fact: FieldAccessFact) -> None:
        owners = self.tables.field_owners.get(fact.field, frozenset())
        if not owners:
            hint = suggest_name(fact.field, self.tables.field_owners)
            self._emit(
                mf, "AL103", ERROR,
                f"no registered class defines field {fact.field!r}{hint}",
                fact.line,
            )
            return
        if fact.is_write and fact.value is not None:
            candidates = self.resolver.field_candidates(
                fact.receiver, fact.field
            )
            narrowed = sorted(candidates & owners) or sorted(owners)
            self._check_type(mf, narrowed, fact.field, fact.value, fact.line)

    def _check_static_access(self, mf: MethodFacts, fact: StaticAccessFact) -> None:
        if fact.class_name is None:
            self._emit(
                mf, "AL303", INFO,
                f"static access target for field {fact.field!r} is not a "
                f"compile-time constant", fact.line,
            )
        else:
            if not self.registry.has_class(fact.class_name):
                hint = suggest_name(fact.class_name,
                                    self.registry.class_names())
                self._emit(
                    mf, "AL101", ERROR,
                    f"static access on unknown class "
                    f"{fact.class_name!r}{hint}", fact.line,
                )
                return
            cls = self.registry.lookup(fact.class_name)
            if not cls.has_field(fact.field) or not cls.field(fact.field).static:
                static_names = [f.name for f in cls.fields() if f.static]
                hint = suggest_name(fact.field, static_names)
                self._emit(
                    mf, "AL103", ERROR,
                    f"class {fact.class_name!r} has no static field "
                    f"{fact.field!r}{hint}", fact.line,
                )
                return
        if fact.is_write and mf.class_name not in self._pinned:
            self._emit(
                mf, "AL202", WARNING,
                f"static field {fact.field!r} written from offloadable "
                f"class; statics live on the client, so every remote "
                f"write round-trips the link", fact.line,
            )

    def _check_type(
        self, mf: MethodFacts, owners: List[str], field_name: str,
        value: ValueRef, line: int,
    ) -> None:
        """AL201: only blatant mismatches, judged against *all* owners."""
        declared = set()
        for owner in owners:
            if not self.registry.has_class(owner):
                return
            cls = self.registry.lookup(owner)
            if not cls.has_field(field_name):
                return
            declared.add(cls.field(field_name).type_name)
        if not declared:
            return
        value_is_object = isinstance(value, Classes)
        value_is_str = (
            isinstance(value, StrConst)
            or (isinstance(value, Scalar) and value.kind == "str")
        )
        value_is_number = isinstance(value, NumConst) or (
            isinstance(value, Scalar) and value.kind in ("int", "float")
        )
        if value_is_object and declared <= _PRIMITIVE_TYPES:
            self._emit(
                mf, "AL201", WARNING,
                f"object stored into primitive field {field_name!r} "
                f"(declared {sorted(declared)[0]!r})", line,
            )
        elif value_is_str and declared <= _NUMERIC_TYPES:
            self._emit(
                mf, "AL201", WARNING,
                f"string stored into numeric field {field_name!r} "
                f"(declared {sorted(declared)[0]!r})", line,
            )
        elif value_is_number and declared == {"ref"}:
            # Numbers into ref slots are how guest code models boxed
            # values throughout the bundled apps; not worth flagging.
            pass

    # -- AL204: shared-class pathology ----------------------------------------

    def _check_shared_classes(self) -> None:
        for node in sorted(self.analysis.shared_classes):
            self.diagnostics.append(Diagnostic(
                rule="AL204", severity=WARNING,
                message=(
                    f"class {node!r} interacts heavily with both pinned "
                    f"and offloadable clusters; either placement pays "
                    f"wire traffic (consider restructuring or a "
                    f"keep_together hint)"
                ),
                class_name=node, method_name="<class>",
            ))

    # -- AL301/AL302: unused declarations --------------------------------------

    def _used_members(self) -> Dict[str, Set[str]]:
        """Map class -> field names the program may touch on it."""
        used: Dict[str, Set[str]] = {}
        for mf, fact in self.program.iter_facts(FieldAccessFact):
            for owner in self.tables.field_owners.get(fact.field, ()):
                used.setdefault(owner, set()).add(fact.field)
        for mf, fact in self.program.iter_facts(StaticAccessFact):
            for owner in self.resolver.static_candidates(
                fact.class_name, fact.field
            ):
                used.setdefault(owner, set()).add(fact.field)
        for mf, fact in self.program.iter_facts(AllocFact):
            for owner in fact.class_names or ():
                used.setdefault(owner, set()).update(fact.field_values)
        return used

    def _referenced_classes(self) -> Set[str]:
        referenced: Set[str] = set()
        for mf, fact in self.program.iter_facts(AllocFact):
            referenced |= set(fact.class_names or ())
        for mf, fact in self.program.iter_facts(CallFact):
            referenced |= self.resolver.invoke_candidates(
                fact.receiver, fact.method
            )
        for mf, fact in self.program.iter_facts(FieldAccessFact):
            referenced |= self.resolver.field_candidates(
                fact.receiver, fact.field
            )
        for mf, fact in self.program.iter_facts(StaticAccessFact):
            referenced |= self.resolver.static_candidates(
                fact.class_name, fact.field
            )
        return referenced

    def _check_unused(self) -> None:
        used_fields = self._used_members()
        referenced = self._referenced_classes()
        for class_def in self.registry.app_classes():
            if class_def.category != "app":
                continue
            if class_def.name not in referenced:
                self.diagnostics.append(Diagnostic(
                    rule="AL302", severity=INFO,
                    message=(
                        f"class {class_def.name!r} is registered but "
                        f"never allocated, invoked, or accessed"
                    ),
                    class_name=class_def.name, method_name="<class>",
                ))
                continue
            touched = used_fields.get(class_def.name, set())
            for fdef in class_def.fields():
                if fdef.name not in touched:
                    self.diagnostics.append(Diagnostic(
                        rule="AL301", severity=INFO,
                        message=(
                            f"field {class_def.name}.{fdef.name} is "
                            f"declared but never accessed"
                        ),
                        class_name=class_def.name, method_name="<class>",
                    ))


    # -- AL4xx: chatty-interface diagnostics (dataflow-powered) ----------------

    def _check_dataflow(self) -> None:
        traffic = self.analysis.traffic
        if traffic is None:
            return
        self._check_loop_round_trips(traffic)
        self._check_per_element_loops(traffic)
        self._check_write_only_fields(traffic)
        self._check_shared_statics(traffic)

    def _check_loop_round_trips(self, traffic) -> None:
        """AL401: read + write of the same all-remote field in a loop.

        The classic chatty accessor: ``x = get_field(o, f); ...;
        set_field(o, f, x')`` inside a loop, where every candidate owner
        of ``f`` lives on the other side of the partition — each
        iteration pays two wire crossings that hoisting would collapse
        to one pair around the loop.
        """
        for mf in self.program.iter_methods():
            if not mf.analyzed:
                continue
            key = (mf.class_name, mf.method_name)
            accessor_client = mf.class_name in traffic.pinned
            reads: Dict[str, FieldAccessFact] = {}
            writes: Dict[str, FieldAccessFact] = {}
            for fact in mf.iter_facts(FieldAccessFact):
                if fact.depth < 1:
                    continue
                candidates = self.resolver.field_candidates(
                    substitute(fact.receiver, traffic.binding_for(key)),
                    fact.field,
                )
                if not candidates:
                    continue
                remote = {
                    c for c in candidates
                    if (c in traffic.pinned) != accessor_client
                }
                if remote != candidates:
                    continue
                (writes if fact.is_write else reads)[fact.field] = fact
            for field_name in sorted(set(reads) & set(writes)):
                write = writes[field_name]
                rtts = 2.0 * traffic.site_rate(key, write)
                nbytes = rtts * ACCESS_BYTES
                self._emit(
                    mf, "AL401", WARNING,
                    f"field {field_name!r} is read and written across the "
                    f"partition boundary inside a loop (predicted "
                    f"{nbytes:.0f} B, {rtts:.0f} round trips per run); "
                    f"hoist the value and write it back once after the "
                    f"loop", write.line,
                )

    def _check_per_element_loops(self, traffic) -> None:
        """AL402: hot per-element access to a remote-majority array.

        Element-at-a-time ``array_read``/``array_write`` in a loop
        against an array class whose predicted traffic majority sits on
        the other side of the partition: each element pays a full round
        trip where one bulk transfer of the whole range would pay one.

        Only primitive-element arrays qualify.  Bulk-copying a ``ref[]``
        moves handles, not payloads — the per-object chatter survives
        the copy, so there is no bulk-transfer win to recommend.
        """
        for mf in self.program.iter_methods():
            if not mf.analyzed:
                continue
            key = (mf.class_name, mf.method_name)
            accessor_client = mf.class_name in traffic.pinned
            flagged: Set[str] = set()
            for fact in mf.iter_facts(ArrayAccessFact):
                if fact.depth < 1:
                    continue
                if fact.count not in (None, 1) or fact.count_ref is not None:
                    continue
                rate = traffic.site_rate(key, fact)
                if rate < AL402_MIN_RATE:
                    continue
                candidates = self.resolver.array_candidates(
                    substitute(fact.array, traffic.binding_for(key))
                )
                if not candidates or "ref[]" in candidates:
                    continue
                remote = []
                for array_class in sorted(candidates):
                    state = traffic.escape.arrays.get(array_class)
                    if state is None or state.total_bytes <= 0:
                        break
                    majority_client = (
                        state.client_bytes >= state.offload_bytes
                    )
                    if majority_client == accessor_client:
                        break
                    remote.append(array_class)
                else:
                    if not remote or remote[0] in flagged:
                        continue
                    flagged.add(remote[0])
                    nbytes = rate * ACCESS_BYTES
                    self._emit(
                        mf, "AL402", WARNING,
                        f"per-element access to remote array "
                        f"{remote[0]!r} in a loop (predicted {rate:.0f} "
                        f"round trips, {nbytes:.0f} B per run); read the "
                        f"range in one bulk transfer instead", fact.line,
                    )

    def _check_write_only_fields(self, traffic) -> None:
        """AL403: cross-partition traffic into a field nobody reads."""
        for (owner, field_name), state in sorted(
            traffic.escape.fields.items()
        ):
            if state.reads > 0 or state.writes <= 0:
                continue
            owner_client = owner in traffic.pinned
            remote_writers = sorted(
                cls for cls in state.writers
                if (cls in traffic.pinned) != owner_client
            )
            if not remote_writers or state.total_bytes < AL4XX_MIN_BYTES:
                continue
            self._emit_class(
                owner, "AL403",
                f"field {owner}.{field_name} is written from across the "
                f"partition boundary ({remote_writers[0]}) but never "
                f"read (predicted {state.total_bytes:.0f} B, "
                f"{state.writes:.0f} round trips per run of pure wire "
                f"waste); drop the writes or keep them local",
            )

    def _check_shared_statics(self, traffic) -> None:
        """AL404: mutable static reached from both placement clusters.

        Statics live on the client, so a static that offloadable *and*
        pinned code both touch — with at least one writer — chains both
        clusters to the client's copy; every remote toucher pays wire.
        """
        for (owner, field_name), state in sorted(
            traffic.escape.statics.items()
        ):
            if state.writes <= 0:
                continue
            accessors = state.readers | state.writers
            sides = {cls in traffic.pinned for cls in accessors}
            if len(sides) < 2 or state.total_bytes < AL4XX_MIN_BYTES:
                continue
            movable = sorted(
                cls for cls in accessors if cls not in traffic.pinned
            )
            self._emit_class(
                owner, "AL404",
                f"mutable static {owner}.{field_name} is reached from "
                f"both placement clusters (predicted "
                f"{state.total_bytes:.0f} B per run); partitioning "
                f"cannot separate {', '.join(movable[:3])} from the "
                f"client's copy — split the static or confine it to one "
                f"cluster",
            )

    def _emit_class(self, class_name: str, rule: str, message: str) -> None:
        self.diagnostics.append(Diagnostic(
            rule=rule, severity=WARNING, message=message,
            class_name=class_name, method_name="<class>",
        ))


def lint_program(analysis: StaticAnalysis) -> List[Diagnostic]:
    """Run every rule and return the sorted diagnostic list."""
    return Linter(analysis).run()


def max_severity(diagnostics: List[Diagnostic]) -> Optional[str]:
    if not diagnostics:
        return None
    return min(diagnostics, key=lambda d: _SEVERITY_ORDER[d.severity]).severity


def has_errors(diagnostics: List[Diagnostic]) -> bool:
    return any(d.severity == ERROR for d in diagnostics)
