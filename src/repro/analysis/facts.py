"""Fact model for the static placement analyzer (AIDE-Lint).

Guest method bodies are plain Python functions written against the
narrow :class:`~repro.vm.context.ExecutionContext` API, so their entire
interaction structure is statically recoverable from the AST.  The
extractor (:mod:`repro.analysis.extractor`) walks each registered
method body and produces the *facts* defined here: call sites, field
and static accesses, allocations, array traffic, CPU work, and global
writes.

Receivers and stored values are described by **symbolic value
references** (:class:`ValueRef` subtypes).  A reference either names a
set of concrete guest classes (``Classes``) or defers to program-wide
state resolved later by the fixpoint in
:mod:`repro.analysis.staticgraph` — the contents of a field
(``FieldOf``), of a reference array (``ElemOf``), of a named global
(``GlobalOf``), or a method's return value (``ReturnOf``).  ``Unknown``
marks values the extractor cannot see (caller arguments, host data);
use sites fall back to the *name tables* (every class possessing the
accessed member), which keeps the derived interaction graph a superset
of anything the runtime can observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple, Union

from ..vm.classloader import ClassRegistry
from ..vm.context import MAIN_CLASS
from ..vm.objectmodel import MethodKind

__all__ = [
    "MAIN_CLASS",
    "ValueRef", "Classes", "Scalar", "StrConst", "NumConst", "IntRange",
    "StrChoice", "Unknown", "CtxRef", "HostRef", "ArrayData", "FieldOf",
    "ElemOf", "GlobalOf", "ReturnOf", "ParamRef", "UnionRef", "union_of",
    "TripCount",
    "classes_of",
    "CallFact", "FieldAccessFact", "StaticAccessFact", "AllocFact",
    "ArrayAllocFact", "ArrayAccessFact", "ElemStoreFact",
    "GlobalWriteFact", "WorkFact", "ReturnFact",
    "MethodFacts", "ProgramFacts", "NameTables",
]


# -- symbolic values ---------------------------------------------------------


class ValueRef:
    """Base class for symbolic descriptions of guest values."""

    __slots__ = ()


@dataclass(frozen=True)
class Classes(ValueRef):
    """A guest object whose class is one of ``names``."""

    names: FrozenSet[str]


@dataclass(frozen=True)
class Scalar(ValueRef):
    """A primitive value; ``kind`` is 'int', 'float', 'bool', 'str' or 'none'."""

    kind: str


@dataclass(frozen=True)
class StrConst(ValueRef):
    """A string constant — candidate class/field/global name."""

    text: str


@dataclass(frozen=True)
class NumConst(ValueRef):
    """A numeric constant (foldable work seconds, array lengths)."""

    value: float


@dataclass(frozen=True)
class IntRange(ValueRef):
    """An integer known to lie in ``[lo, hi]`` (constant-range loops).

    Bound by the extractor for ``for i in range(<const>)`` targets, and
    used to prune branches whose comparisons against constants are
    statically decided (e.g. a render gate whose threshold exceeds the
    loop bound), keeping the predicted graph tight without breaking the
    superset property — a pruned branch cannot execute at runtime."""

    lo: int
    hi: int


@dataclass(frozen=True)
class StrChoice(ValueRef):
    """One of a statically known set of strings (e.g. family names)."""

    options: FrozenSet[str]


@dataclass(frozen=True)
class Unknown(ValueRef):
    """A value the extractor cannot see; use sites fall back to name tables."""


@dataclass(frozen=True)
class CtxRef(ValueRef):
    """The :class:`ExecutionContext` parameter itself."""


@dataclass(frozen=True, eq=False)
class HostRef(ValueRef):
    """A live host-Python object visible at extraction time.

    Compared/hashes by identity (the wrapped object need not be
    hashable); used for closures, module globals, and ``self`` of the
    application object so attribute chains can be resolved eagerly.
    """

    obj: Any = None


@dataclass(frozen=True)
class ArrayData(ValueRef):
    """The ``.data`` attribute of a guest array (host-level contents)."""

    container: ValueRef


@dataclass(frozen=True)
class FieldOf(ValueRef):
    """The contents of ``owner.field``, resolved program-wide."""

    owner: ValueRef
    field: str


@dataclass(frozen=True)
class ElemOf(ValueRef):
    """An element read out of a reference array."""

    container: ValueRef


@dataclass(frozen=True)
class GlobalOf(ValueRef):
    """The contents of the named client-VM global root."""

    name: str


@dataclass(frozen=True)
class ReturnOf(ValueRef):
    """The return value of invoking ``method`` on ``receiver``."""

    receiver: ValueRef
    method: str


@dataclass(frozen=True)
class ParamRef(ValueRef):
    """The ``index``-th guest argument of the enclosing method.

    Indexing starts after the implicit ``(ctx, self)`` pair, matching
    the position in :attr:`CallFact.args` at call sites.  The base
    resolver treats this as :class:`Unknown` (callers are unknown in
    general), preserving the superset property; the interprocedural
    dataflow pass (:mod:`repro.analysis.dataflow`) substitutes merged
    caller arguments to recover constants such as array counts."""

    index: int


@dataclass(frozen=True)
class UnionRef(ValueRef):
    """Any of several alternatives (branch merges, ``a or b``)."""

    parts: Tuple[ValueRef, ...]


_UNKNOWN = Unknown()


def union_of(*refs: ValueRef) -> ValueRef:
    """Merge alternatives, flattening nested unions and dropping dups."""
    flat: List[ValueRef] = []
    for ref in refs:
        if ref is None:
            continue
        parts = ref.parts if isinstance(ref, UnionRef) else (ref,)
        for part in parts:
            if part not in flat:
                flat.append(part)
    if not flat:
        return _UNKNOWN
    if len(flat) == 1:
        return flat[0]
    return UnionRef(tuple(flat))


def classes_of(*names: str) -> Classes:
    return Classes(frozenset(names))


# -- facts -------------------------------------------------------------------
#
# Every site fact carries three loop annotations: ``weight`` — the
# legacy multiplicative estimate baked in by the extractor (LOOP_WEIGHT
# per nesting level, capped) — ``depth`` — the raw syntactic loop
# nesting level — and ``trips`` — one entry per enclosing loop
# (outermost first), holding the loop's constant trip count when its
# ``range`` bound folded to a constant, a symbolic :class:`ValueRef`
# when the bound is a method parameter or similar (the dataflow pass
# resolves it through call-site bindings), or ``None`` when unknown.
# The summary layer re-weights sites as the product of known trips,
# substituting a configurable base B for each unknown level.

#: One enclosing loop's trip count: constant, symbolic, or unknown.
TripCount = Optional[Union[int, ValueRef]]


@dataclass
class CallFact:
    """One ``ctx.invoke`` / ``ctx.invoke_static`` site."""

    receiver: ValueRef
    method: str
    is_static: bool = False
    #: Constant class name for ``invoke_static`` sites, when resolvable.
    class_name: Optional[str] = None
    nargs: int = 0
    weight: int = 1
    line: int = 0
    depth: int = 0
    trips: Tuple[TripCount, ...] = ()
    #: Symbolic guest arguments (after the receiver/class and method
    #: name), consumed by the dataflow pass for constant propagation.
    args: Tuple[ValueRef, ...] = ()


@dataclass
class FieldAccessFact:
    """One ``ctx.get_field`` / ``ctx.set_field`` site."""

    receiver: ValueRef
    field: str
    is_write: bool = False
    value: Optional[ValueRef] = None
    weight: int = 1
    line: int = 0
    depth: int = 0
    trips: Tuple[TripCount, ...] = ()


@dataclass
class StaticAccessFact:
    """One ``ctx.get_static`` / ``ctx.set_static`` site."""

    class_name: Optional[str]
    field: str
    is_write: bool = False
    value: Optional[ValueRef] = None
    weight: int = 1
    line: int = 0
    depth: int = 0
    trips: Tuple[TripCount, ...] = ()


@dataclass
class AllocFact:
    """One ``ctx.new`` site."""

    class_names: Optional[FrozenSet[str]]
    field_values: Dict[str, ValueRef] = field(default_factory=dict)
    weight: int = 1
    line: int = 0
    depth: int = 0
    trips: Tuple[TripCount, ...] = ()


@dataclass
class ArrayAllocFact:
    """One ``ctx.new_array`` site."""

    element_type: Optional[str]
    length: Optional[int] = None
    weight: int = 1
    line: int = 0
    depth: int = 0
    trips: Tuple[TripCount, ...] = ()


@dataclass
class ArrayAccessFact:
    """One ``ctx.array_read`` / ``ctx.array_write`` site."""

    array: ValueRef
    is_write: bool = False
    count: Optional[int] = None
    weight: int = 1
    line: int = 0
    depth: int = 0
    trips: Tuple[TripCount, ...] = ()
    #: Symbolic element count when it is not a literal constant; the
    #: dataflow pass resolves :class:`ParamRef` counts (e.g. the
    #: ``count`` argument of ``System.arraycopy``) through call sites.
    count_ref: Optional[ValueRef] = None


@dataclass
class ElemStoreFact:
    """A host-level store into a reference array: ``arr.data[i] = v``."""

    container: ValueRef
    value: ValueRef
    weight: int = 1
    line: int = 0
    depth: int = 0
    trips: Tuple[TripCount, ...] = ()


@dataclass
class GlobalWriteFact:
    """One ``ctx.set_global`` site."""

    name: str
    value: ValueRef
    weight: int = 1
    line: int = 0
    depth: int = 0
    trips: Tuple[TripCount, ...] = ()


@dataclass
class WorkFact:
    """One ``ctx.work`` site (data-dependent CPU)."""

    seconds: Optional[float] = None
    weight: int = 1
    line: int = 0
    depth: int = 0
    trips: Tuple[TripCount, ...] = ()


@dataclass
class ReturnFact:
    """One ``return`` statement's value."""

    value: ValueRef
    line: int = 0


Fact = Any  # any of the dataclasses above


# -- per-method and whole-program containers ---------------------------------


@dataclass
class MethodFacts:
    """Everything extracted from one guest method body."""

    class_name: str
    method_name: str
    kind: str = "instance"
    facts: List[Fact] = field(default_factory=list)
    returns: List[ValueRef] = field(default_factory=list)
    #: False when the body could not be located/parsed (facts empty).
    analyzed: bool = False
    source_file: Optional[str] = None
    source_line: Optional[int] = None

    def iter_facts(self, fact_type=None) -> Iterator[Fact]:
        for fact in self.facts:
            if fact_type is None or isinstance(fact, fact_type):
                yield fact


class NameTables:
    """Reverse member tables: who defines a method/field of a name.

    These are the duck-typing fallback that keeps the static graph a
    superset of runtime behaviour: when a receiver cannot be resolved,
    the candidate set is every class that *could* answer the access.
    The same tables drive the runtime "did you mean" suggestions.
    """

    def __init__(self) -> None:
        self.method_owners: Dict[str, FrozenSet[str]] = {}
        self.field_owners: Dict[str, FrozenSet[str]] = {}
        self.static_field_owners: Dict[str, FrozenSet[str]] = {}

    @classmethod
    def from_registry(cls, registry: ClassRegistry) -> "NameTables":
        tables = cls()
        methods: Dict[str, set] = {}
        fields: Dict[str, set] = {}
        statics: Dict[str, set] = {}
        for class_def in registry:
            for mdef in class_def.methods():
                methods.setdefault(mdef.name, set()).add(class_def.name)
            for fdef in class_def.fields():
                fields.setdefault(fdef.name, set()).add(class_def.name)
                if fdef.static:
                    statics.setdefault(fdef.name, set()).add(class_def.name)
        tables.method_owners = {k: frozenset(v) for k, v in methods.items()}
        tables.field_owners = {k: frozenset(v) for k, v in fields.items()}
        tables.static_field_owners = {
            k: frozenset(v) for k, v in statics.items()
        }
        return tables

    def classes_with_method(self, name: str) -> FrozenSet[str]:
        return self.method_owners.get(name, frozenset())

    def classes_with_field(self, name: str) -> FrozenSet[str]:
        return self.field_owners.get(name, frozenset())


@dataclass
class ProgramFacts:
    """Facts for every registered guest class plus the app entry point."""

    app_name: str
    registry: ClassRegistry
    name_tables: NameTables
    methods: Dict[Tuple[str, str], MethodFacts] = field(default_factory=dict)

    def method_facts(self, class_name: str, method_name: str) -> Optional[MethodFacts]:
        return self.methods.get((class_name, method_name))

    def iter_methods(self) -> Iterator[MethodFacts]:
        return iter(self.methods.values())

    def iter_facts(self, fact_type=None) -> Iterator[Tuple[MethodFacts, Fact]]:
        for mf in self.methods.values():
            for fact in mf.iter_facts(fact_type):
                yield mf, fact

    @property
    def fact_count(self) -> int:
        return sum(len(mf.facts) for mf in self.methods.values())

    def native_method_classes(self, stateless_ok: bool = False) -> FrozenSet[str]:
        """Classes whose metadata pins them (native methods)."""
        pinned = []
        for class_def in self.registry:
            if stateless_ok:
                if class_def.has_stateful_natives:
                    pinned.append(class_def.name)
            elif class_def.has_native_methods:
                pinned.append(class_def.name)
        return frozenset(pinned)

    def stateful_native_sites(self) -> Dict[Tuple[str, str], bool]:
        """Map of (class, method) -> is-stateful for every native method."""
        sites: Dict[Tuple[str, str], bool] = {}
        for class_def in self.registry:
            for mdef in class_def.methods():
                if mdef.kind is MethodKind.NATIVE:
                    sites[(class_def.name, mdef.name)] = not mdef.stateless
        return sites
