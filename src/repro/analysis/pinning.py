"""The static pinning closure.

AIDE's runtime pins a class to the client when its metadata says it
holds native methods (plus the ``<main>`` entry point).  The analyzer
reproduces that decision *before any code runs* and extends it with two
advisory tiers derived from the extracted facts:

* **must** — classes the runtime will definitely pin: native holders
  under the session's stateless-natives rule, plus the entry point.
  The parity tests assert the runtime pinned seed (``Trace
  .pinned_classes`` / ``ClassRegistry.pinned_class_names``) is always a
  subset of this tier.
* **advisory** — offloadable classes that write static fields.  Statics
  live on the client, so every remote write round-trips the link; the
  closure recommends (but does not force) keeping such classes local.
* **reaches_native** — classes with a statically possible call path to
  a stateful-native holder.  Offloading these is legal but every native
  bounce pays a wire crossing (the paper's Figure 8 effect); the tier
  is informational and feeds the AL203 lint rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set

from .facts import MAIN_CLASS, CallFact, ProgramFacts, StaticAccessFact
from .staticgraph import Resolver


@dataclass(frozen=True)
class PinningClosure:
    """The three-tier static pinning result for one application."""

    must: FrozenSet[str]
    advisory: FrozenSet[str]
    reaches_native: FrozenSet[str]
    #: Human-readable reason per class (first reason wins).
    reasons: Dict[str, str] = field(default_factory=dict)

    @property
    def all_pinned(self) -> FrozenSet[str]:
        return self.must | self.advisory

    def covers(self, runtime_pinned: Iterable[str]) -> bool:
        """True when the closure contains the runtime pinned seed."""
        return not self.missing(runtime_pinned)

    def missing(self, runtime_pinned: Iterable[str]) -> FrozenSet[str]:
        """Runtime-pinned classes the static closure failed to predict."""
        return frozenset(runtime_pinned) - self.must


def call_edges(
    program: ProgramFacts, resolver: Resolver
) -> Dict[str, Set[str]]:
    """Static call graph: class -> classes it may invoke."""
    edges: Dict[str, Set[str]] = {}
    for mf, fact in program.iter_facts(CallFact):
        callees = resolver.invoke_candidates(fact.receiver, fact.method)
        edges.setdefault(mf.class_name, set()).update(
            callee for callee in callees if callee != mf.class_name
        )
    return edges


def _reaching(
    edges: Dict[str, Set[str]], targets: FrozenSet[str]
) -> FrozenSet[str]:
    """Classes with a path (of length >= 1) into ``targets``."""
    reverse: Dict[str, Set[str]] = {}
    for caller, callees in edges.items():
        for callee in callees:
            reverse.setdefault(callee, set()).add(caller)
    reached: Set[str] = set()
    frontier: List[str] = list(targets)
    while frontier:
        node = frontier.pop()
        for caller in reverse.get(node, ()):
            if caller not in reached:
                reached.add(caller)
                frontier.append(caller)
    return frozenset(reached)


def compute_pinning(
    program: ProgramFacts,
    resolver: Resolver,
    stateless_natives_ok: bool = False,
) -> PinningClosure:
    """Derive the pinning closure from metadata plus extracted facts."""
    reasons: Dict[str, str] = {}

    must: Set[str] = set(
        program.native_method_classes(stateless_ok=stateless_natives_ok)
    )
    for name in must:
        kind = ("stateful native" if stateless_natives_ok else "native")
        reasons[name] = f"declares {kind} methods"
    must.add(MAIN_CLASS)
    reasons.setdefault(MAIN_CLASS, "entry point")

    advisory: Set[str] = set()
    for mf, fact in program.iter_facts(StaticAccessFact):
        if not fact.is_write:
            continue
        cls = mf.class_name
        if cls in must or cls == MAIN_CLASS:
            continue
        owners = resolver.static_candidates(fact.class_name, fact.field)
        if owners:
            advisory.add(cls)
            reasons.setdefault(
                cls,
                f"writes client-resident static "
                f"{sorted(owners)[0]}.{fact.field}",
            )

    stateful = frozenset(
        cls for (cls, _method), is_stateful
        in program.stateful_native_sites().items() if is_stateful
    )
    reaches = _reaching(call_edges(program, resolver), stateful)
    reaches = frozenset(reaches - must - {MAIN_CLASS})
    for cls in reaches:
        reasons.setdefault(cls, "may transitively call a stateful native")

    return PinningClosure(
        must=frozenset(must),
        advisory=frozenset(advisory),
        reaches_native=reaches,
        reasons=reasons,
    )
