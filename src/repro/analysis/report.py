"""Analysis driver and report rendering for ``python -m repro analyze``.

:func:`analyze_app` runs the full pipeline for one bundled application —
extraction, resolution, graph prediction, pinning closure, lint — and
returns an :class:`AnalysisReport` that renders either as human-readable
text or as schema-stable JSON (``"schema": "aide-lint/1"``).  The JSON
shape is covered by tests; extend it by *adding* keys, never renaming.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..vm.classloader import ClassRegistry
from ..vm.natives import install_standard_library
from .extractor import extract_program
from .facts import ProgramFacts
from .lint import RULE_SUMMARIES, Diagnostic, has_errors, lint_program
from .pinning import PinningClosure, compute_pinning
from .staticgraph import StaticAnalysis, analyze_program

SCHEMA = "aide-lint/1"

_SEVERITY_TAGS = {"error": "E", "warning": "W", "info": "I"}

#: Diagnostic severity -> SARIF 2.1.0 result level.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _sarif_uri(source_file: str) -> str:
    """Repo-relative POSIX uri when the file sits under this checkout."""
    from pathlib import Path

    path = Path(source_file)
    root = Path(__file__).resolve().parents[3]
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def application_factories() -> Dict[str, type]:
    """Name -> application class for everything the analyzer can target."""
    from ..apps import ALL_APPLICATIONS, MixedSession

    factories = {cls().name: cls for cls in ALL_APPLICATIONS}
    factories[MixedSession().name] = MixedSession
    return factories


@dataclass
class AnalysisReport:
    """Everything one ``analyze`` run produced."""

    app_name: str
    program: ProgramFacts
    analysis: StaticAnalysis
    closure: PinningClosure
    diagnostics: List[Diagnostic]

    @property
    def has_errors(self) -> bool:
        return has_errors(self.diagnostics)

    # -- JSON ------------------------------------------------------------

    def to_dict(self) -> dict:
        graph = self.analysis.graph
        counts = {"error": 0, "warning": 0, "info": 0}
        for diag in self.diagnostics:
            counts[diag.severity] += 1
        return {
            "schema": SCHEMA,
            "app": self.app_name,
            "summary": {
                "classes": len(self.program.registry.app_classes()),
                "methods": len(self.program.methods),
                "facts": self.program.fact_count,
                "graph_nodes": graph.node_count,
                "graph_edges": graph.link_count,
                "resolver_rounds": self.analysis.resolver.rounds,
            },
            "pinning": {
                "must": sorted(self.closure.must),
                "advisory": sorted(self.closure.advisory),
                "reaches_native": sorted(self.closure.reaches_native),
                "reasons": {
                    name: self.closure.reasons[name]
                    for name in sorted(self.closure.reasons)
                },
            },
            "hints": {
                "pin_local": sorted(self.analysis.hints.pin_local),
                "keep_together": [
                    sorted(group)
                    for group in sorted(self.analysis.hints.keep_together,
                                        key=min)
                ],
                "shared_classes": sorted(self.analysis.shared_classes),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": counts,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    # -- SARIF ------------------------------------------------------------

    def to_sarif(self) -> dict:
        """The diagnostics as a SARIF 2.1.0 log (one run, one tool).

        Severities map error->error, warning->warning, info->note; each
        result carries the guest-source physical location plus the
        ``Class.method`` logical location the text report prints.
        """
        fired = sorted({d.rule for d in self.diagnostics})
        results = []
        for diag in self.diagnostics:
            location: dict = {
                "logicalLocations": [{
                    "fullyQualifiedName":
                        f"{diag.class_name}.{diag.method_name}",
                    "kind": "function",
                }],
            }
            if diag.source_file:
                location["physicalLocation"] = {
                    "artifactLocation": {"uri": _sarif_uri(diag.source_file)},
                    "region": {"startLine": max(diag.line, 1)},
                }
            results.append({
                "ruleId": diag.rule,
                "level": _SARIF_LEVELS[diag.severity],
                "message": {"text": diag.message},
                "locations": [location],
            })
        return {
            "$schema": _SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "aide-lint",
                    "version": SCHEMA.rsplit("/", 1)[-1],
                    "rules": [
                        {
                            "id": rule,
                            "shortDescription": {
                                "text": RULE_SUMMARIES.get(rule, rule),
                            },
                        }
                        for rule in fired
                    ],
                }},
                "automationDetails": {"id": f"aide-lint/{self.app_name}"},
                "results": results,
            }],
        }

    def to_sarif_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_sarif(), indent=indent, sort_keys=False)

    # -- human-readable ---------------------------------------------------

    def to_text(self) -> str:
        lines: List[str] = []
        payload = self.to_dict()
        summary = payload["summary"]
        lines.append(f"AIDE-Lint · {self.app_name}")
        lines.append(
            f"  {summary['classes']} classes, {summary['methods']} method "
            f"bodies, {summary['facts']} facts; predicted graph "
            f"{summary['graph_nodes']} nodes / {summary['graph_edges']} "
            f"edges (resolved in {summary['resolver_rounds']} rounds)"
        )
        lines.append("")
        lines.append("pinning closure:")
        lines.append(f"  must stay on client : "
                     f"{', '.join(sorted(self.closure.must))}")
        if self.closure.advisory:
            lines.append(f"  advisory (statics)  : "
                         f"{', '.join(sorted(self.closure.advisory))}")
        if self.closure.reaches_native:
            lines.append(f"  reaches a native    : "
                         f"{', '.join(sorted(self.closure.reaches_native))}")
        hints = payload["hints"]
        if hints["pin_local"] or hints["keep_together"]:
            lines.append("placement hints:")
            if hints["pin_local"]:
                lines.append(f"  pin_local     : "
                             f"{', '.join(hints['pin_local'])}")
            for group in hints["keep_together"]:
                lines.append(f"  keep_together : {', '.join(group)}")
        if hints["shared_classes"]:
            lines.append(f"shared-class pathology: "
                         f"{', '.join(hints['shared_classes'])}")
        lines.append("")
        if not self.diagnostics:
            lines.append("no diagnostics")
        else:
            counts = payload["counts"]
            lines.append(
                f"{len(self.diagnostics)} diagnostic(s): "
                f"{counts['error']} error, {counts['warning']} warning, "
                f"{counts['info']} info"
            )
            for diag in self.diagnostics:
                tag = _SEVERITY_TAGS[diag.severity]
                location = diag.class_name
                if diag.method_name not in ("<class>",):
                    location += f".{diag.method_name}"
                if diag.line:
                    location += f":{diag.line}"
                lines.append(f"  [{tag}] {diag.rule} {location}")
                lines.append(f"        {diag.message}")
        return "\n".join(lines)


def analyze_registry(
    registry: ClassRegistry, app=None, app_name: Optional[str] = None
) -> AnalysisReport:
    """Run the pipeline over an already-populated registry."""
    program = extract_program(registry, app, app_name=app_name)
    analysis = analyze_program(program)
    closure = compute_pinning(program, analysis.resolver)
    diagnostics = lint_program(analysis)
    return AnalysisReport(
        app_name=program.app_name,
        program=program,
        analysis=analysis,
        closure=closure,
        diagnostics=diagnostics,
    )


def analyze_app(name: str) -> AnalysisReport:
    """Run the full static-analysis pipeline for one bundled app."""
    factories = application_factories()
    if name not in factories:
        known = ", ".join(sorted(factories))
        raise KeyError(f"unknown application {name!r}; one of {known}")
    app = factories[name]()
    registry = ClassRegistry()
    install_standard_library(registry)
    app.install(registry)
    return analyze_registry(registry, app)
