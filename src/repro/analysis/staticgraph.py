"""Program-wide resolution and the predicted interaction graph.

The extractor produces per-method facts whose receivers are *symbolic*
(:class:`~repro.analysis.facts.ValueRef`).  This module closes the loop:

* :class:`Resolver` — a fixpoint over the program's store facts (field
  writes, allocation keywords, reference-array stores, global writes,
  return values) that maps every symbolic reference to the set of guest
  classes it may denote.  Unresolvable references fall back to the name
  tables (every class owning the accessed member), which keeps every
  downstream product a *superset* of runtime behaviour.
* :func:`predict_graph` — the static counterpart of the monitor's
  :class:`~repro.core.graph.ExecutionGraph`: one node per class, one
  edge per possible cross-class interaction, weighted by syntactic loop
  depth and nominal message sizes.
* :func:`derive_hints` / :func:`build_seed` — converts the predicted
  graph into :class:`~repro.core.hints.PlacementHints` (pin advisories
  and co-location groups) plus an interaction profile, packaged as a
  :class:`~repro.core.hints.ColdStartSeed` for the offloading engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..core.graph import ExecutionGraph
from ..core.hints import ColdStartSeed, PlacementHints, interaction_profile
from ..vm.objectmodel import array_class_name
from .facts import (
    MAIN_CLASS,
    AllocFact,
    ArrayAccessFact,
    ArrayAllocFact,
    ArrayData,
    CallFact,
    Classes,
    CtxRef,
    ElemOf,
    ElemStoreFact,
    FieldAccessFact,
    FieldOf,
    GlobalOf,
    GlobalWriteFact,
    HostRef,
    IntRange,
    NumConst,
    ParamRef,
    ProgramFacts,
    ReturnOf,
    Scalar,
    StaticAccessFact,
    StrChoice,
    StrConst,
    UnionRef,
    Unknown,
    ValueRef,
    WorkFact,
)

#: Fixpoint iteration cap — generously above any real program's depth.
MAX_ROUNDS = 25

#: Nominal wire sizes for predicted edges (bytes).  These mirror the
#: runtime's reference-slot accounting loosely; the predicted graph's
#: job is structure and relative weight, not byte-exact traffic.
INVOKE_BASE_BYTES = 24
ARG_BYTES = 8
ACCESS_BYTES = 8
#: Nominal CPU seconds for a ``ctx.work`` site whose argument is not a
#: compile-time constant.
DEFAULT_WORK_SECONDS = 1e-4


class _Cell:
    """One store entry: classes observed flowing in + an unknown taint."""

    __slots__ = ("classes", "unknown")

    def __init__(self) -> None:
        self.classes: Set[str] = set()
        self.unknown = False

    def merge(self, classes: Set[str], unknown: bool) -> bool:
        changed = False
        if not classes <= self.classes:
            self.classes |= classes
            changed = True
        if unknown and not self.unknown:
            self.unknown = True
            changed = True
        return changed


_EMPTY: Tuple[Set[str], bool] = (set(), False)


class Resolver:
    """Fixpoint resolution of symbolic references to class-name sets."""

    def __init__(self, program: ProgramFacts) -> None:
        self.program = program
        self.tables = program.name_tables
        self.field_store: Dict[Tuple[str, str], _Cell] = {}
        self.globals_store: Dict[str, _Cell] = {}
        self.returns_store: Dict[Tuple[str, str], _Cell] = {}
        #: Program-wide pool of classes stored into reference arrays.
        self.elem_pool = _Cell()
        #: Array class names allocated anywhere (``int[]`` …), the
        #: fallback candidate set for unresolvable array operands.
        self.array_classes: Set[str] = set()
        self._unanalyzed: Set[Tuple[str, str]] = {
            (mf.class_name, mf.method_name)
            for mf in program.iter_methods()
            if not mf.analyzed
        }
        self.rounds = 0
        self._solve()

    # -- fixpoint ------------------------------------------------------------

    def _solve(self) -> None:
        for mf, fact in self.program.iter_facts(ArrayAllocFact):
            if fact.element_type is not None:
                self.array_classes.add(array_class_name(fact.element_type))
        for self.rounds in range(1, MAX_ROUNDS + 1):
            if not self._pass():
                break

    def _pass(self) -> bool:
        changed = False
        for mf, fact in self.program.iter_facts():
            if isinstance(fact, AllocFact):
                if not fact.class_names or not fact.field_values:
                    continue
                for name, value in fact.field_values.items():
                    resolved = self.resolve(value)
                    for cls in fact.class_names:
                        cell = self.field_store.setdefault(
                            (cls, name), _Cell()
                        )
                        changed |= cell.merge(*resolved)
            elif isinstance(fact, FieldAccessFact):
                if not fact.is_write or fact.value is None:
                    continue
                resolved = self.resolve(fact.value)
                for owner in self.field_candidates(fact.receiver, fact.field):
                    cell = self.field_store.setdefault(
                        (owner, fact.field), _Cell()
                    )
                    changed |= cell.merge(*resolved)
            elif isinstance(fact, StaticAccessFact):
                if not fact.is_write or fact.value is None:
                    continue
                resolved = self.resolve(fact.value)
                for owner in self.static_candidates(fact.class_name,
                                                    fact.field):
                    cell = self.field_store.setdefault(
                        (owner, fact.field), _Cell()
                    )
                    changed |= cell.merge(*resolved)
            elif isinstance(fact, ElemStoreFact):
                changed |= self.elem_pool.merge(*self.resolve(fact.value))
            elif isinstance(fact, GlobalWriteFact):
                cell = self.globals_store.setdefault(fact.name, _Cell())
                changed |= cell.merge(*self.resolve(fact.value))
        for mf in self.program.iter_methods():
            if not mf.returns:
                continue
            key = (mf.class_name, mf.method_name)
            cell = self.returns_store.setdefault(key, _Cell())
            for value in mf.returns:
                changed |= cell.merge(*self.resolve(value))
        return changed

    # -- reference resolution -----------------------------------------------

    def resolve(
        self, ref: ValueRef, _seen: FrozenSet[ValueRef] = frozenset()
    ) -> Tuple[Set[str], bool]:
        """Map a symbolic reference to (possible classes, unknown taint)."""
        if ref in _seen:
            return _EMPTY
        if isinstance(ref, Classes):
            return set(ref.names), False
        if isinstance(ref, (Scalar, StrConst, NumConst, IntRange, StrChoice,
                            CtxRef, HostRef, ArrayData)):
            return _EMPTY
        if isinstance(ref, (Unknown, ParamRef)):
            # Callers are unknown in general: a parameter could be
            # anything, so the name-table fallback applies (superset
            # property).  The dataflow pass substitutes real arguments.
            return set(), True
        seen = _seen | {ref}
        if isinstance(ref, UnionRef):
            classes: Set[str] = set()
            unknown = False
            for part in ref.parts:
                part_classes, part_unknown = self.resolve(part, seen)
                classes |= part_classes
                unknown |= part_unknown
            return classes, unknown
        if isinstance(ref, FieldOf):
            owners = self._owner_candidates(
                ref.owner, ref.field, self.tables.field_owners, seen
            )
            return self._read_cells(
                (self.field_store.get((owner, ref.field))
                 for owner in owners)
            )
        if isinstance(ref, ElemOf):
            return set(self.elem_pool.classes), self.elem_pool.unknown
        if isinstance(ref, GlobalOf):
            cell = self.globals_store.get(ref.name)
            if cell is None:
                return set(), True
            return set(cell.classes), cell.unknown
        if isinstance(ref, ReturnOf):
            owners = self._owner_candidates(
                ref.receiver, ref.method, self.tables.method_owners, seen
            )
            classes = set()
            unknown = False
            for owner in owners:
                if (owner, ref.method) in self._unanalyzed:
                    unknown = True
                cell = self.returns_store.get((owner, ref.method))
                if cell is not None:
                    classes |= cell.classes
                    unknown |= cell.unknown
            return classes, unknown
        return set(), True

    @staticmethod
    def _read_cells(cells) -> Tuple[Set[str], bool]:
        classes: Set[str] = set()
        unknown = False
        for cell in cells:
            if cell is None:
                continue
            classes |= cell.classes
            unknown |= cell.unknown
        return classes, unknown

    def _owner_candidates(
        self,
        receiver: ValueRef,
        member: str,
        table: Dict[str, FrozenSet[str]],
        seen: FrozenSet[ValueRef] = frozenset(),
    ) -> Set[str]:
        """Candidate owner classes for a member access.

        A resolved receiver narrows the set to classes actually having
        the member; an unresolved one falls back to every class that
        *could* answer it (the duck-typing name table), preserving the
        superset property.
        """
        classes, unknown = self.resolve(receiver, seen)
        owners = table.get(member, frozenset())
        narrowed = {c for c in classes if c in owners} if classes else set()
        if narrowed and not unknown:
            return narrowed
        return narrowed | set(owners)

    # -- use-site candidate sets ----------------------------------------------

    def invoke_candidates(self, receiver: ValueRef, method: str) -> Set[str]:
        return self._owner_candidates(
            receiver, method, self.tables.method_owners
        )

    def field_candidates(self, receiver: ValueRef, field: str) -> Set[str]:
        return self._owner_candidates(
            receiver, field, self.tables.field_owners
        )

    def static_candidates(
        self, class_name: Optional[str], field: str
    ) -> Set[str]:
        if class_name is not None:
            return {class_name}
        return set(self.tables.static_field_owners.get(field, frozenset()))

    def array_candidates(self, array: ValueRef) -> Set[str]:
        classes, unknown = self.resolve(array)
        arrays = {c for c in classes if c.endswith("[]")}
        if arrays and not unknown:
            return arrays
        return arrays | set(self.array_classes)


# -- the predicted graph -----------------------------------------------------


def predict_graph(
    program: ProgramFacts, resolver: Optional[Resolver] = None
) -> ExecutionGraph:
    """Build the static counterpart of the runtime execution graph.

    Every class the program can touch becomes a node; every statically
    possible cross-class interaction becomes an edge with nominal bytes
    scaled by syntactic loop weight.  By construction the result's node
    and edge sets are supersets of what any run's monitor observes
    (verified per-app by the parity tests).
    """
    resolver = resolver or Resolver(program)
    graph = ExecutionGraph()
    graph.ensure_node(MAIN_CLASS)
    for class_def in program.registry.app_classes():
        graph.ensure_node(class_def.name)
    for name in resolver.array_classes:
        graph.ensure_node(name)

    for mf in program.iter_methods():
        accessor = mf.class_name
        for fact in mf.facts:
            if isinstance(fact, CallFact):
                nbytes = INVOKE_BASE_BYTES + ARG_BYTES * fact.nargs
                for callee in resolver.invoke_candidates(fact.receiver,
                                                         fact.method):
                    graph.record_interaction(accessor, callee,
                                             nbytes * fact.weight)
            elif isinstance(fact, FieldAccessFact):
                for owner in resolver.field_candidates(fact.receiver,
                                                       fact.field):
                    graph.record_interaction(accessor, owner,
                                             ACCESS_BYTES * fact.weight)
            elif isinstance(fact, StaticAccessFact):
                for owner in resolver.static_candidates(fact.class_name,
                                                        fact.field):
                    graph.record_interaction(accessor, owner,
                                             ACCESS_BYTES * fact.weight)
            elif isinstance(fact, ArrayAccessFact):
                count = fact.count if fact.count is not None else 8
                for owner in resolver.array_candidates(fact.array):
                    graph.record_interaction(
                        accessor, owner,
                        ACCESS_BYTES * count * fact.weight,
                    )
            elif isinstance(fact, AllocFact):
                if fact.class_names:
                    for name in fact.class_names:
                        if program.registry.has_class(name):
                            node = graph.ensure_node(name)
                            node.memory_bytes += (
                                program.registry.lookup(name).instance_size
                                * fact.weight
                            )
            elif isinstance(fact, ArrayAllocFact):
                if fact.element_type is not None:
                    name = array_class_name(fact.element_type)
                    graph.ensure_node(name)
            elif isinstance(fact, WorkFact):
                seconds = (fact.seconds if fact.seconds is not None
                           else DEFAULT_WORK_SECONDS)
                graph.add_cpu(accessor, seconds * fact.weight)
    return graph


# -- hints and the cold-start seed -------------------------------------------

#: An edge this share of *both* endpoints' total adjacent bytes marks
#: the pair as one semantic component worth keeping together.
COLOCATE_SHARE = 0.5


@dataclass
class StaticAnalysis:
    """The bundled products of one static-analysis run."""

    program: ProgramFacts
    resolver: Resolver
    graph: ExecutionGraph
    hints: PlacementHints
    seed: ColdStartSeed
    colocation_groups: Tuple[FrozenSet[str], ...] = ()
    shared_classes: FrozenSet[str] = frozenset()
    pin_advisories: Dict[str, str] = dataclass_field(default_factory=dict)
    #: Interprocedural traffic estimate (``None`` only when a caller
    #: assembles the dataclass by hand without running the pass).
    traffic: Optional["TrafficPrediction"] = None

    @property
    def weighted_graph(self) -> ExecutionGraph:
        """The traffic-weighted graph (falls back to the base graph)."""
        if self.traffic is not None:
            return self.traffic.graph
        return self.graph


def _adjacent_bytes(graph: ExecutionGraph, node: str) -> int:
    return sum(edge.bytes for _, edge in graph.adjacent_edges(node))


def colocation_groups(
    graph: ExecutionGraph,
    pinned: FrozenSet[str],
) -> Tuple[FrozenSet[str], ...]:
    """Groups of offloadable classes dominated by mutual interaction.

    Two nodes belong together when the edge between them carries at
    least :data:`COLOCATE_SHARE` of each endpoint's total traffic —
    splitting such a pair would cut the majority of both ends' links.
    Pinned classes and the entry point never join a group (grouping a
    pinned class would drag its partners onto the client).
    """
    totals = {node: _adjacent_bytes(graph, node) for node in graph.nodes()}
    parent: Dict[str, str] = {}

    def find(node: str) -> str:
        root = node
        while parent.get(root, root) != root:
            root = parent[root]
        parent[node] = root
        return root

    for (a, b), edge in graph.edges():
        if a in pinned or b in pinned or MAIN_CLASS in (a, b):
            continue
        if totals[a] <= 0 or totals[b] <= 0:
            continue
        share_a = edge.bytes / totals[a]
        share_b = edge.bytes / totals[b]
        if share_a >= COLOCATE_SHARE and share_b >= COLOCATE_SHARE:
            parent[find(a)] = find(b)

    groups: Dict[str, Set[str]] = {}
    for node in parent:
        groups.setdefault(find(node), set()).add(node)
    return tuple(
        frozenset(members) for members in groups.values()
        if len(members) >= 2
    )


def shared_class_pathology(
    graph: ExecutionGraph, pinned: FrozenSet[str]
) -> FrozenSet[str]:
    """Offloadable nodes strongly coupled to both sides of the cut.

    This is the paper's Dia pathology: a class (the preview's ``int[]``
    scratch arrays) referenced heavily both by pinned client classes and
    by offloadable ones, so either placement pays wire traffic.
    """
    flagged = []
    for node in graph.nodes():
        if node in pinned or node == MAIN_CLASS:
            continue
        pinned_bytes = 0
        offload_bytes = 0
        for neighbor, edge in graph.adjacent_edges(node):
            if neighbor in pinned or neighbor == MAIN_CLASS:
                pinned_bytes += edge.bytes
            else:
                offload_bytes += edge.bytes
        total = pinned_bytes + offload_bytes
        if total <= 0:
            continue
        if pinned_bytes >= total * 0.25 and offload_bytes >= total * 0.25:
            flagged.append(node)
    return frozenset(flagged)


#: Predicted traffic share to the pinned side above which a class is
#: advised to stay on the client (see :func:`pinned_affinity`).
PIN_AFFINITY = 0.9
#: ...but never when the class holds more than this share of the
#: predicted heap: memory-heavy classes are exactly what the memory
#: policy needs the freedom to offload.
PIN_MEMORY_SHARE_CAP = 0.01


def pinned_affinity(
    graph: ExecutionGraph, pinned: FrozenSet[str]
) -> FrozenSet[str]:
    """Offloadable classes whose predicted traffic stays client-side.

    A class that talks almost exclusively (:data:`PIN_AFFINITY`) to
    pinned classes and the entry point — a file loader bouncing every
    call off a stateful native, an input handler driven only by
    ``<main>`` — pays a wire crossing for every interaction if it is
    ever dragged to the surrogate as cluster ballast.  Array classes
    are exempt (they are the paper's migration payload), as is any
    class with non-trivial predicted memory: pinning those would starve
    the memory policy of the very state it needs to move.
    """
    total_memory = graph.total_memory()
    pins = []
    for node in graph.nodes():
        if node in pinned or node.endswith("[]"):
            continue
        pinned_bytes = 0
        total_bytes = 0
        for neighbor, edge in graph.adjacent_edges(node):
            total_bytes += edge.bytes
            if neighbor in pinned:
                pinned_bytes += edge.bytes
        if total_bytes <= 0 or pinned_bytes / total_bytes < PIN_AFFINITY:
            continue
        memory = graph.node(node).memory_bytes
        if total_memory and memory > total_memory * PIN_MEMORY_SHARE_CAP:
            continue
        pins.append(node)
    return frozenset(pins)


def derive_hints(
    graph: ExecutionGraph,
    pinned: FrozenSet[str],
    static_writers: Dict[str, str],
) -> Tuple[PlacementHints, Tuple[FrozenSet[str], ...]]:
    """Convert predicted structure into placement hints.

    ``pin_local`` carries the advisory pins — offloadable classes that
    write client-resident statics, plus the :func:`pinned_affinity`
    classes whose predicted traffic is almost entirely client-side;
    ``keep_together`` carries the co-location groups.  The mandatory
    pins (native holders) are *not* duplicated here — the runtime
    derives those itself.
    """
    groups = colocation_groups(graph, pinned)
    pin_local = frozenset(
        name for name in static_writers if name not in pinned
    ) | pinned_affinity(graph, pinned)
    # A class cannot be both pinned-by-hint and grouped: contraction
    # would pin the whole group.
    groups = tuple(
        group for group in groups if not (group & pin_local)
    )
    return PlacementHints(pin_local=pin_local, keep_together=groups), groups


def find_static_writers(
    program: ProgramFacts, resolver: Resolver
) -> Dict[str, str]:
    """Offloadable classes that write static (client-resident) fields."""
    writers: Dict[str, str] = {}
    pinned = program.native_method_classes()
    for mf, fact in program.iter_facts(StaticAccessFact):
        if not fact.is_write:
            continue
        cls = mf.class_name
        if cls == MAIN_CLASS or cls in pinned:
            continue
        owners = resolver.static_candidates(fact.class_name, fact.field)
        if owners:
            writers.setdefault(
                cls, f"writes static {sorted(owners)[0]}.{fact.field}"
            )
    return writers


def analyze_program(
    program: ProgramFacts,
    dataflow_config=None,
) -> StaticAnalysis:
    """Run resolution, graph and traffic prediction, hint derivation.

    Structural products (node/edge sets, lint name checks) come from
    the base predicted graph; *weight-sensitive* products — placement
    hints, co-location groups, the shared-class pathology, and the
    cold-start seed profile — consume the interprocedurally weighted
    graph so hot edges dominate as they would at runtime.
    """
    from .dataflow import predict_traffic

    resolver = Resolver(program)
    graph = predict_graph(program, resolver)
    pinned = frozenset(program.native_method_classes()) | {MAIN_CLASS}
    traffic = predict_traffic(
        program, resolver, base_graph=graph, pinned=pinned,
        config=dataflow_config,
    )
    static_writers = find_static_writers(program, resolver)
    hints, groups = derive_hints(traffic.graph, pinned, static_writers)
    seed = ColdStartSeed(
        hints=hints if (hints.pin_local or hints.has_groups) else None,
        profile=interaction_profile(traffic.graph),
        source=f"static-analysis:{program.app_name}",
        predicted_cross_traffic=traffic.cross_traffic_bytes,
    )
    return StaticAnalysis(
        program=program,
        resolver=resolver,
        graph=graph,
        hints=hints,
        seed=seed,
        colocation_groups=groups,
        shared_classes=shared_class_pathology(traffic.graph, pinned),
        pin_advisories=static_writers,
        traffic=traffic,
    )
