"""Configuration objects for VMs, devices, and the emulator.

The paper's experiments are parameterised by a small number of knobs:
heap size (6 MB vs 8 MB for JavaNote), GC trigger conditions, the client
/ surrogate CPU speed ratio (3.5x in section 5.2), and the wireless link
(11 Mbps WaveLAN, 2.4 ms null-RPC round trip).  These dataclasses hold
those knobs and validate them eagerly so that a bad experiment setup
fails at construction time rather than mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigurationError
from .units import KB, MB


@dataclass(frozen=True)
class GCConfig:
    """Trigger conditions for the incremental mark-and-sweep collector.

    Chai (and hence the paper's prototype) triggers a collection cycle on
    space limitation, on the number of objects created since the last
    cycle, or on the bytes allocated since the last cycle; this produces
    the frequent free-memory reports that drive offload triggering.
    """

    #: Collect when free heap falls below this fraction of capacity.
    space_pressure_fraction: float = 0.10
    #: Collect after this many allocations since the previous cycle.
    allocations_per_cycle: int = 2000
    #: Collect after this many bytes allocated since the previous cycle.
    bytes_per_cycle: int = 512 * KB

    def __post_init__(self) -> None:
        if not 0.0 < self.space_pressure_fraction < 1.0:
            raise ConfigurationError(
                "space_pressure_fraction must be in (0, 1), got "
                f"{self.space_pressure_fraction}"
            )
        if self.allocations_per_cycle <= 0:
            raise ConfigurationError("allocations_per_cycle must be positive")
        if self.bytes_per_cycle <= 0:
            raise ConfigurationError("bytes_per_cycle must be positive")


@dataclass(frozen=True)
class DeviceProfile:
    """A device role in the ad-hoc platform.

    ``cpu_speed`` is a relative execution rate: a method whose declared
    cost is ``c`` seconds of *reference* CPU time takes ``c / cpu_speed``
    seconds of simulated wall time on this device.  The paper calibrated
    the surrogate (a PC) at 3.5x the client (a Jornada 547).
    """

    name: str
    cpu_speed: float = 1.0
    heap_capacity: int = 6 * MB

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("device name must be non-empty")
        if self.cpu_speed <= 0:
            raise ConfigurationError("cpu_speed must be positive")
        if self.heap_capacity <= 0:
            raise ConfigurationError("heap_capacity must be positive")

    def scaled(self, reference_seconds: float) -> float:
        """Wall time on this device for the given reference CPU time."""
        if reference_seconds < 0:
            raise ConfigurationError("reference_seconds must be non-negative")
        return reference_seconds / self.cpu_speed

    def with_heap(self, heap_capacity: int) -> "DeviceProfile":
        """Copy of this profile with a different heap capacity."""
        return replace(self, heap_capacity=heap_capacity)


#: Client profile matching the paper's HP Jornada 547 handheld.
JORNADA = DeviceProfile(name="jornada-547", cpu_speed=1.0, heap_capacity=6 * MB)

#: Surrogate profile matching the paper's PC (3.5x the Jornada).
PC_SURROGATE = DeviceProfile(name="pc-surrogate", cpu_speed=3.5, heap_capacity=64 * MB)

#: A development PC running the prototype standalone (monitoring study).
PC_CLIENT = DeviceProfile(name="pc-600mhz", cpu_speed=3.5, heap_capacity=8 * MB)


@dataclass(frozen=True)
class VMConfig:
    """Configuration of one guest virtual machine instance."""

    device: DeviceProfile = JORNADA
    gc: GCConfig = field(default_factory=GCConfig)
    #: Enable execution monitoring hooks (the paper measures ~11% cost).
    monitoring_enabled: bool = True
    #: CPU cost charged per recorded monitoring event, so that the paper's
    #: ~11% monitoring overhead *emerges* from the ~1.2M events a JavaNote
    #: run produces rather than being injected as a constant.
    monitoring_event_cost: float = 2.9e-6
    #: Seed for any randomised guest behaviour; keeps runs repeatable.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.monitoring_event_cost < 0:
            raise ConfigurationError("monitoring_event_cost must be non-negative")

    def with_device(self, device: DeviceProfile) -> "VMConfig":
        return replace(self, device=device)

    def with_monitoring(self, enabled: bool) -> "VMConfig":
        return replace(self, monitoring_enabled=enabled)


@dataclass(frozen=True)
class EnhancementFlags:
    """The two emulator enhancements studied in section 5.2.

    ``stateless_natives_local`` lets annotated stateless/idempotent native
    methods (math, string copy) execute on the device where they are
    invoked instead of forcing a hop back to the client.

    ``arrays_object_granularity`` places primitive arrays at *object*
    granularity instead of class granularity, so individual arrays can be
    split between the client and surrogate.
    """

    stateless_natives_local: bool = False
    arrays_object_granularity: bool = False

    @classmethod
    def none(cls) -> "EnhancementFlags":
        return cls(False, False)

    @classmethod
    def combined(cls) -> "EnhancementFlags":
        return cls(True, True)

    def label(self) -> str:
        """Bar label used by the Figure 10 harness."""
        if self.stateless_natives_local and self.arrays_object_granularity:
            return "Combined"
        if self.stateless_natives_local:
            return "Native"
        if self.arrays_object_granularity:
            return "Array"
        return "Initial"
