"""Plain-text renderers for experiment results.

The benchmarks print the same rows/series the paper reports; these
helpers keep the output format consistent across experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..units import bytes_to_human, seconds_to_human


def header(title: str, width: int = 78) -> str:
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def table(columns: Sequence[str], rows: Iterable[Sequence[object]],
          widths: Sequence[int] = ()) -> str:
    """Render a simple fixed-width table.

    >>> print(table(["app", "time"], [["javanote", "315s"]], widths=[10, 8]))
    app            time
    ---------- --------
    javanote       315s
    """
    rows = [list(map(str, row)) for row in rows]
    if not widths:
        widths = [
            max(len(str(col)), *(len(r[i]) for r in rows)) if rows
            else len(str(col))
            for i, col in enumerate(columns)
        ]
    lines = []
    lines.append(" ".join(
        f"{col:<{w}}" if i == 0 else f"{col:>{w}}"
        for i, (col, w) in enumerate(zip(columns, widths))
    ))
    lines.append(" ".join("-" * w for w in widths))
    for row in rows:
        lines.append(" ".join(
            f"{cell:<{w}}" if i == 0 else f"{cell:>{w}}"
            for i, (cell, w) in enumerate(zip(row, widths))
        ))
    return "\n".join(lines)


def pct(fraction: float) -> str:
    return f"{fraction * 100:.1f}%"


def secs(value: float) -> str:
    return seconds_to_human(value)


def size(value: int) -> str:
    return bytes_to_human(value)


def comparison_block(title: str, rows: List[Sequence[str]]) -> str:
    """A paper-vs-measured block used in EXPERIMENTS.md and bench output."""
    body = table(["quantity", "paper", "measured"], rows)
    return f"{header(title)}\n{body}"
