"""Section 5.1 monitoring overhead and Table 2 execution metrics.

The paper runs JavaNote on a PC (600 KB file opened, a small amount of
editing and scrolling) with monitoring off (31.59 s) and on (35.04 s),
an ~11% performance overhead, and reports the execution metrics behind
the monitor: ~134 live classes, ~1,230 live objects (6,808 created),
and ~1.2 M interaction events spread over ~1,126 graph links whose
storage footprint is small.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DeviceProfile, VMConfig
from ..core.monitor import ExecutionMonitor
from ..units import MB
from ..vm.session import LocalSession
from .common import CHAI_GC, javanote_monitoring
from .reporting import comparison_block, pct, secs, size

#: The paper's monitoring host: a PC with an 8 MB heap (big enough that
#: the scenario never runs out of memory).
MONITORING_PC = DeviceProfile("pc-600mhz", cpu_speed=1.0,
                              heap_capacity=8 * MB)


@dataclass
class MonitoringResult:
    """Monitoring on/off times plus Table 2 metrics."""

    time_without_monitoring: float
    time_with_monitoring: float
    overhead_fraction: float
    classes_average: float
    classes_maximum: float
    objects_average: float
    objects_maximum: float
    objects_created: int
    interaction_events: int
    invocation_events: int
    access_events: int
    links_average: float
    links_maximum: float
    graph_storage_bytes: int


def _run_scenario(monitoring: bool) -> tuple:
    config = VMConfig(
        device=MONITORING_PC,
        gc=CHAI_GC,
        monitoring_enabled=monitoring,
    )
    session = LocalSession(config)
    monitor = ExecutionMonitor()
    session.add_listener(monitor)
    app = javanote_monitoring()
    app.install(session.registry)
    app.main(session.ctx)
    return session.clock.now, monitor


def run_monitoring_overhead() -> MonitoringResult:
    time_off, _ = _run_scenario(monitoring=False)
    time_on, monitor = _run_scenario(monitoring=True)
    counters = monitor.counters
    return MonitoringResult(
        time_without_monitoring=time_off,
        time_with_monitoring=time_on,
        overhead_fraction=(time_on - time_off) / time_off,
        classes_average=monitor.classes_series.average,
        classes_maximum=monitor.classes_series.maximum,
        objects_average=monitor.objects_series.average,
        objects_maximum=monitor.objects_series.maximum,
        objects_created=counters.objects_created,
        interaction_events=counters.interaction_events,
        invocation_events=counters.invocation_events,
        access_events=counters.access_events,
        links_average=monitor.links_series.average,
        links_maximum=monitor.links_series.maximum,
        graph_storage_bytes=monitor.graph_storage_bytes(),
    )


def format_monitoring(result: MonitoringResult) -> str:
    rows = [
        ["scenario time, monitoring off", "31.59s",
         secs(result.time_without_monitoring)],
        ["scenario time, monitoring on", "35.04s",
         secs(result.time_with_monitoring)],
        ["monitoring performance overhead", "11%",
         pct(result.overhead_fraction)],
        ["classes (average/max)", "134 / 138",
         f"{result.classes_average:.0f} / {result.classes_maximum:.0f}"],
        ["objects (average/max/created)", "1230 / 2810 / 6808",
         f"{result.objects_average:.0f} / {result.objects_maximum:.0f}"
         f" / {result.objects_created}"],
        ["interaction events", "1,186,532",
         f"{result.interaction_events:,}"],
        ["graph links (average/max)", "1126 / 1190",
         f"{result.links_average:.0f} / {result.links_maximum:.0f}"],
        ["execution graph storage", "small",
         size(result.graph_storage_bytes)],
    ]
    return comparison_block(
        "Table 2 + monitoring overhead (JavaNote on a PC)", rows
    )
