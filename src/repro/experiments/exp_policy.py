"""Figure 7: the effect of triggering and partitioning policies.

The emulator repartitions each memory workload's trace under the full
policy grid the paper sweeps — triggering threshold 2%–50% of memory
free, tolerance of one to three low-memory reports, and a minimum of
10%–80% of memory to free — and compares the best completed policy
against the initial one.

Paper findings reproduced:

* Biomer's and Dia's overheads fall by tens of percent under the best
  policy (the paper reports 30–43%);
* JavaNote is essentially unchanged (its document/UI boundary is the
  same whenever the trigger fires);
* the best policies differ per application — Biomer and Dia prefer a
  50% threshold with a single report, JavaNote keeps the initial 5%
  threshold with three reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.policy import OffloadPolicy, policy_sweep
from ..emulator import Emulator
from .common import cached_trace, memory_emulator_config
from .exp_overhead import MEMORY_WORKLOADS, PAPER_OVERHEADS
from .reporting import comparison_block, pct

PAPER_REDUCTIONS = {
    "javanote": "~0%",
    "dia": "30-43%",
    "biomer": "30-43%",
}


@dataclass
class PolicySweepRow:
    """Initial-vs-best comparison for one application (Figure 7 bars)."""

    app: str
    original_seconds: float
    initial_seconds: float
    initial_overhead: float
    best_seconds: float
    best_overhead: float
    best_policy_label: str
    best_threshold: float
    best_tolerance: int
    best_min_free: float
    overhead_reduction: float
    policies_swept: int
    policies_completed: int


def run_policy_sweep(app_name: str,
                     policies: Optional[List[OffloadPolicy]] = None
                     ) -> PolicySweepRow:
    trace = cached_trace(app_name, MEMORY_WORKLOADS[app_name])
    emulator = Emulator(trace)
    base = memory_emulator_config()
    original = emulator.original(base).total_time
    initial = emulator.replay(base).total_time
    grid = policies if policies is not None else policy_sweep()
    outcomes = emulator.policy_sweep(grid, base)
    completed = [(p, r) for p, r in outcomes if r.completed]
    best_policy, best = min(completed, key=lambda pr: pr[1].total_time)
    initial_overhead = (initial - original) / original
    best_overhead = (best.total_time - original) / original
    reduction = (
        (initial - best.total_time) / (initial - original)
        if initial > original else 0.0
    )
    return PolicySweepRow(
        app=app_name,
        original_seconds=original,
        initial_seconds=initial,
        initial_overhead=initial_overhead,
        best_seconds=best.total_time,
        best_overhead=best_overhead,
        best_policy_label=best_policy.label(),
        best_threshold=best_policy.trigger.free_threshold,
        best_tolerance=best_policy.trigger.tolerance,
        best_min_free=best_policy.min_free_fraction,
        overhead_reduction=reduction,
        policies_swept=len(outcomes),
        policies_completed=len(completed),
    )


def run_all_policy_sweeps() -> List[PolicySweepRow]:
    return [run_policy_sweep(name) for name in MEMORY_WORKLOADS]


def format_policy_sweeps(rows: List[PolicySweepRow]) -> str:
    body = []
    for row in rows:
        body.append([
            f"{row.app} initial overhead",
            PAPER_OVERHEADS[row.app],
            pct(row.initial_overhead),
        ])
        body.append([
            f"{row.app} best-policy overhead",
            "(lower)",
            pct(row.best_overhead),
        ])
        body.append([
            f"{row.app} overhead reduction",
            PAPER_REDUCTIONS[row.app],
            pct(row.overhead_reduction),
        ])
        body.append([
            f"{row.app} best policy",
            "50%/x1 (dia,biomer)" if row.app != "javanote" else "5%/x3",
            row.best_policy_label,
        ])
    return comparison_block(
        "Figure 7: effect of policies on remote execution overhead", body
    )
