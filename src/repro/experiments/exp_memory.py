"""Section 5.1 / Figure 5: avoiding memory constraints with JavaNote.

The scenario: JavaNote loads and edits a 600 KB text file.  On an
unmodified VM with a 6 MB heap the application runs out of memory and
fails; on the offloading platform the memory pressure is detected, data
and computation move to the surrogate, and the run completes.  The
paper reports that the selected partitioning freed ~90% of the heap
(more than the required 20%, because the interaction bandwidth was
minimised there), predicted ~100 KB/s of cut bandwidth, and took ~0.1 s
to compute on a 600 MHz Pentium.

This harness exercises the *prototype* path: two live VMs, the real
trigger/partition/migrate loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import VMConfig
from ..core.policy import OffloadPolicy
from ..errors import OutOfMemoryError
from ..platform.platform import DistributedPlatform
from ..units import MB
from ..vm.session import LocalSession
from .common import CHAI_GC, CLIENT_6MB, SURROGATE_SAME_SPEED, javanote_memory
from .reporting import comparison_block, pct, secs, size


@dataclass
class MemoryRescueResult:
    """Outcome of the paired unmodified-VM / platform runs."""

    unmodified_failed: bool
    oom_message: str
    rescued: bool
    elapsed: float
    offload_count: int
    freed_bytes: int
    freed_fraction: float
    heap_capacity: int
    cut_bytes: int
    predicted_bandwidth: float
    partition_compute_seconds: float
    candidates_evaluated: int
    client_classes: int
    offloaded_classes: int
    migrated_bytes: int
    #: Graphviz renderings of the execution graph (the paper's Figure 5):
    #: the full graph, and the graph with the selected partition marked.
    graph_dot: str = ""
    partitioned_graph_dot: str = ""


def run_memory_rescue(app_factory=javanote_memory) -> MemoryRescueResult:
    """Run the failure case and the rescue case back to back."""
    # 1. Unmodified VM at 6MB: expect an out-of-memory failure.
    failed = False
    oom_message = ""
    session = LocalSession(VMConfig(device=CLIENT_6MB, gc=CHAI_GC,
                                    monitoring_event_cost=0.0))
    app = app_factory()
    app.install(session.registry)
    try:
        app.main(session.ctx)
    except OutOfMemoryError as oom:
        failed = True
        oom_message = str(oom)

    # 2. The distributed platform with the initial policy.
    platform = DistributedPlatform(
        client_config=VMConfig(device=CLIENT_6MB, gc=CHAI_GC,
                               monitoring_event_cost=0.0),
        surrogate_config=VMConfig(device=SURROGATE_SAME_SPEED, gc=CHAI_GC,
                                  monitoring_event_cost=0.0),
        offload_policy=OffloadPolicy.initial(),
    )
    report = platform.run(app_factory())
    event = platform.engine.performed_events[0]
    decision = event.decision
    return MemoryRescueResult(
        unmodified_failed=failed,
        oom_message=oom_message,
        rescued=report.offload_count >= 1,
        elapsed=report.elapsed,
        offload_count=report.offload_count,
        freed_bytes=decision.freed_bytes,
        freed_fraction=decision.freed_bytes / platform.client.vm.heap.capacity,
        heap_capacity=platform.client.vm.heap.capacity,
        cut_bytes=decision.cut_bytes,
        predicted_bandwidth=decision.predicted_bandwidth,
        partition_compute_seconds=decision.compute_seconds,
        candidates_evaluated=decision.candidates_evaluated,
        client_classes=len(decision.client_nodes),
        offloaded_classes=len(decision.offload_nodes),
        migrated_bytes=report.migrated_bytes,
        graph_dot=platform.monitor.graph.to_dot(min_edge_bytes=64),
        partitioned_graph_dot=platform.monitor.graph.to_dot(
            partition=decision.offload_nodes, min_edge_bytes=64
        ),
    )


def format_memory_rescue(result: MemoryRescueResult) -> str:
    rows = [
        ["6MB unmodified VM outcome", "fails (OOM)",
         "fails (OOM)" if result.unmodified_failed else "completed (!)"],
        ["6MB platform outcome", "completes",
         "completes" if result.rescued else "failed (!)"],
        ["heap freed by selected partitioning", "~90%",
         pct(result.freed_fraction)],
        ["predicted cut bandwidth", "~100KB/s",
         f"{result.predicted_bandwidth / 1024:.1f}KB/s"],
        ["partitioning heuristic compute time", "~0.1s (600MHz)",
         secs(result.partition_compute_seconds)],
        ["state migrated to surrogate", "(not reported)",
         size(result.migrated_bytes)],
    ]
    return comparison_block(
        "Figure 5 / Section 5.1: JavaNote memory rescue", rows
    )
