"""Table 1: the application catalog."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..apps import ALL_APPLICATIONS
from .reporting import header, table


@dataclass(frozen=True)
class CatalogRow:
    name: str
    description: str
    resource_demands: str


def run_catalog() -> List[CatalogRow]:
    """Instantiate each application and collect its Table 1 row."""
    rows = []
    for app_class in ALL_APPLICATIONS:
        app = app_class()
        rows.append(CatalogRow(app.name, app.description,
                               app.resource_demands))
    return rows


def format_catalog(rows: List[CatalogRow]) -> str:
    body = table(
        ["Name", "Description", "Resource Demands"],
        [[r.name, r.description, r.resource_demands] for r in rows],
    )
    return f"{header('Table 1: Java applications used for experiments')}\n{body}"
