"""Figure 8: remote native method invocations vs total remote invocations.

After offloading, code executing on the surrogate keeps calling native
methods, which are pinned to the client; the paper measures how many
remote invocations lead to native calls.  For the UI-coupled content
applications (JavaNote, Dia) natives are a large share of remote
invocations; for Biomer the remote traffic is dominated by data access
between the split halves instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..emulator import Emulator
from .common import cached_trace, memory_emulator_config
from .exp_overhead import MEMORY_WORKLOADS
from .reporting import comparison_block, pct

PAPER_NATIVE_SHARE: Dict[str, str] = {
    "javanote": "large",
    "dia": "large",
    "biomer": "small",
}


@dataclass
class NativeShareRow:
    """One Figure 8 bar pair."""

    app: str
    total_remote_invocations: int
    remote_native_invocations: int
    total_remote_interactions: int
    native_share_of_invocations: float


def run_native_share(app_name: str) -> NativeShareRow:
    trace = cached_trace(app_name, MEMORY_WORKLOADS[app_name])
    result = Emulator(trace).replay(memory_emulator_config())
    invocations = result.remote_invocations
    natives = result.remote_native_invocations
    return NativeShareRow(
        app=app_name,
        total_remote_invocations=invocations,
        remote_native_invocations=natives,
        total_remote_interactions=result.remote_interactions,
        native_share_of_invocations=(
            natives / invocations if invocations else 0.0
        ),
    )


def run_all_native_shares() -> List[NativeShareRow]:
    return [run_native_share(name) for name in MEMORY_WORKLOADS]


def format_native_shares(rows: List[NativeShareRow]) -> str:
    body = []
    for row in rows:
        body.append([
            f"{row.app} remote invocations (total/native)",
            "(figure bars)",
            f"{row.total_remote_invocations}/{row.remote_native_invocations}",
        ])
        body.append([
            f"{row.app} native share",
            PAPER_NATIVE_SHARE[row.app],
            pct(row.native_share_of_invocations),
        ])
    block = comparison_block(
        "Figure 8: remote native calls vs total remote invocations", body
    )
    by_share = sorted(rows, key=lambda r: -r.native_share_of_invocations)
    ordering = " > ".join(r.app for r in by_share)
    return (
        f"{block}\nnative-share ordering: {ordering} "
        "(paper: javanote, dia large; biomer small)"
    )
