"""Shared experiment infrastructure.

Every experiment harness in this package reproduces one table or figure
from the paper's evaluation (see DESIGN.md section 4).  The harnesses
share the paper's device/link constants, a per-process trace cache (the
emulator studies replay each application's trace many times), and the
canonical workload configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..apps import Biomer, Dia, JavaNote, Tracer, Voxel
from ..config import DeviceProfile, GCConfig
from ..core.policy import OffloadPolicy
from ..emulator import EmulatorConfig, Trace, record_application
from ..net.link import LinkModel
from ..net.wavelan import WAVELAN_11MBPS
from ..units import MB

#: The paper's client: HP Jornada-class handheld with a 6 MB Java heap.
CLIENT_6MB = DeviceProfile("jornada-547", cpu_speed=1.0, heap_capacity=6 * MB)

#: The paper's surrogate PC at the measured 3.5x speed ratio.
SURROGATE_35X = DeviceProfile("pc-surrogate", cpu_speed=3.5,
                              heap_capacity=64 * MB)

#: For the memory experiments the paper uses the same processor speed on
#: both sides (section 5.1, "the same processor speed was used for both
#: the client and the surrogate").
SURROGATE_SAME_SPEED = DeviceProfile("pc-surrogate", cpu_speed=1.0,
                                     heap_capacity=64 * MB)

#: Chai-like collector triggers.
CHAI_GC = GCConfig()


def memory_emulator_config(
    policy: Optional[OffloadPolicy] = None,
    link: LinkModel = WAVELAN_11MBPS,
) -> EmulatorConfig:
    """Section 5.1 configuration: 6 MB client, same-speed surrogate."""
    return EmulatorConfig(
        client=CLIENT_6MB,
        surrogate=SURROGATE_SAME_SPEED,
        link=link,
        gc=CHAI_GC,
        policy=policy if policy is not None else OffloadPolicy.initial(),
    )


def cpu_emulator_config(
    offload_at_event: int,
    link: LinkModel = WAVELAN_11MBPS,
) -> EmulatorConfig:
    """Section 5.2 configuration: 3.5x surrogate, explicit re-evaluation."""
    return EmulatorConfig(
        client=DeviceProfile("jornada-547", cpu_speed=1.0,
                             heap_capacity=64 * MB),
        surrogate=SURROGATE_35X,
        link=link,
        gc=CHAI_GC,
        offload_at_event=offload_at_event,
    )


# -- canonical workload configurations -------------------------------------------

def javanote_memory() -> JavaNote:
    """The section 5.1 JavaNote scenario: 600 KB file, editing session."""
    return JavaNote()


def javanote_monitoring() -> JavaNote:
    """The monitoring-overhead scenario: open + light editing/scrolling.

    Fine-grained event fidelity reproduces Table 2's ~1.2M interaction
    events in a ~30 s (reference CPU) session.
    """
    return JavaNote(edits=100, scrolls=140, fidelity="fine")


def dia_memory() -> Dia:
    return Dia()


def biomer_memory() -> Biomer:
    return Biomer()


def biomer_cpu() -> Biomer:
    return Biomer.cpu_scenario()


def voxel_cpu() -> Voxel:
    return Voxel()


def tracer_cpu() -> Tracer:
    return Tracer()


#: Fraction of the trace after which the section 5.2 harness asks the
#: platform to re-evaluate placement.  Voxel re-evaluates before its
#: preview opens; Biomer after its interactive inspection phase.
CPU_OFFLOAD_EVENT_FRACTION: Dict[str, float] = {
    "voxel": 0.10,
    "tracer": 0.25,
    "biomer": 0.75,
}


# -- trace cache -----------------------------------------------------------------

_TRACE_CACHE: Dict[Tuple[str, str], Trace] = {}


def cached_trace(name: str, factory: Callable[[], object],
                 variant: str = "default") -> Trace:
    """Record (once per process) and reuse an application trace."""
    key = (name, variant)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = record_application(factory())
        _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()


@dataclass(frozen=True)
class PaperReference:
    """A value the paper reports, for side-by-side comparison output."""

    label: str
    paper_value: str
    measured: str

    def row(self) -> str:
        return f"{self.label:<44} {self.paper_value:>16} {self.measured:>16}"
