"""Experiment harnesses: one per table and figure in the paper."""

from .catalog import CatalogRow, format_catalog, run_catalog
from .common import (
    CLIENT_6MB,
    CPU_OFFLOAD_EVENT_FRACTION,
    SURROGATE_35X,
    SURROGATE_SAME_SPEED,
    cached_trace,
    clear_trace_cache,
    cpu_emulator_config,
    memory_emulator_config,
)
from .exp_cpu import (
    CpuOffloadResult,
    format_cpu_offloads,
    run_all_cpu_offloads,
    run_cpu_offload,
)
from .exp_memory import (
    MemoryRescueResult,
    format_memory_rescue,
    run_memory_rescue,
)
from .exp_monitoring import (
    MonitoringResult,
    format_monitoring,
    run_monitoring_overhead,
)
from .exp_native import (
    NativeShareRow,
    format_native_shares,
    run_all_native_shares,
    run_native_share,
)
from .exp_overhead import (
    OverheadRow,
    format_overheads,
    run_all_overheads,
    run_overhead,
)
from .exp_policy import (
    PolicySweepRow,
    format_policy_sweeps,
    run_all_policy_sweeps,
    run_policy_sweep,
)

__all__ = [
    "CLIENT_6MB",
    "CPU_OFFLOAD_EVENT_FRACTION",
    "CatalogRow",
    "CpuOffloadResult",
    "MemoryRescueResult",
    "MonitoringResult",
    "NativeShareRow",
    "OverheadRow",
    "PolicySweepRow",
    "SURROGATE_35X",
    "SURROGATE_SAME_SPEED",
    "cached_trace",
    "clear_trace_cache",
    "cpu_emulator_config",
    "format_catalog",
    "format_cpu_offloads",
    "format_memory_rescue",
    "format_monitoring",
    "format_native_shares",
    "format_overheads",
    "format_policy_sweeps",
    "memory_emulator_config",
    "run_all_cpu_offloads",
    "run_all_native_shares",
    "run_all_overheads",
    "run_all_policy_sweeps",
    "run_catalog",
    "run_cpu_offload",
    "run_memory_rescue",
    "run_monitoring_overhead",
    "run_native_share",
    "run_overhead",
    "run_policy_sweep",
]
