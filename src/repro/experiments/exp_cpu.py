"""Figure 10 / Section 5.2: offloading under processing constraints.

The emulator replays the CPU workloads against the paper's asymmetric
device pair (the surrogate is 3.5x the client) and compares five
configurations per application:

* **Original** — local execution, no offloading;
* **Initial** — offloading with neither enhancement, chosen by the
  early system's optimistic (compute + migration) estimator;
* **Native** — stateless native methods execute where invoked;
* **Array** — primitive integer arrays placed at object granularity;
* **Combined** — both enhancements, with the refusal-capable completion
  -time policy in charge.  For Voxel and Tracer the combined offload
  improves on local execution (the paper reports savings up to ~15%);
  for Biomer the policy refuses to offload — predicted slower than
  local — while *forcing* the refused partition ("partitioning the
  application manually") realises a small win, the paper's 790 s
  predicted / 750 s local / 711 s manual triad.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..config import EnhancementFlags
from ..core.policy import BestEffortCpuPolicy, CpuPartitionPolicy
from ..emulator import EmulationResult, Emulator
from .common import (
    CPU_OFFLOAD_EVENT_FRACTION,
    biomer_cpu,
    cached_trace,
    cpu_emulator_config,
    tracer_cpu,
    voxel_cpu,
)
from .reporting import comparison_block, secs

CPU_WORKLOADS: Dict[str, Callable] = {
    "voxel": voxel_cpu,
    "tracer": tracer_cpu,
    "biomer": biomer_cpu,
}

#: Paper's qualitative Figure 10 shape per application.
PAPER_SHAPE = {
    "voxel": "initial worse; combined ~10-15% better",
    "tracer": "initial worse; native/combined ~15% better",
    "biomer": "all forced variants worse-or-equal; policy refuses",
}

BAR_LABELS = ("Original", "Initial", "Native", "Array", "Combined")


@dataclass
class CpuOffloadResult:
    """The five Figure 10 bars for one application, plus the policy row."""

    app: str
    original_seconds: float
    bars: Dict[str, float]
    combined_policy_seconds: float
    combined_policy_offloaded: bool
    refusal_predicted_seconds: Optional[float]
    refusal_history_local_seconds: Optional[float]
    forced_combined_seconds: float

    def delta(self, label: str) -> float:
        return (self.bars[label] - self.original_seconds) / self.original_seconds


def run_cpu_offload(app_name: str) -> CpuOffloadResult:
    trace = cached_trace(f"{app_name}-cpu", CPU_WORKLOADS[app_name],
                         variant="cpu")
    emulator = Emulator(trace)
    offload_at = int(len(trace) * CPU_OFFLOAD_EVENT_FRACTION[app_name])
    base = cpu_emulator_config(offload_at_event=offload_at)

    original = emulator.replay(
        dataclasses.replace(base, offload_enabled=False)
    )
    bars: Dict[str, float] = {"Original": original.total_time}
    flag_sets = {
        "Initial": EnhancementFlags(False, False),
        "Native": EnhancementFlags(True, False),
        "Array": EnhancementFlags(False, True),
        "Combined": EnhancementFlags(True, True),
    }
    forced_results: Dict[str, EmulationResult] = {}
    for label, flags in flag_sets.items():
        result = emulator.replay(dataclasses.replace(
            base, partition_policy=BestEffortCpuPolicy(), flags=flags
        ))
        forced_results[label] = result
        bars[label] = result.total_time

    # The refusal-capable policy under the combined enhancements.
    policy_run = emulator.replay(dataclasses.replace(
        base, partition_policy=CpuPartitionPolicy(),
        flags=EnhancementFlags(True, True),
    ))
    refusal_predicted = None
    refusal_local = None
    forced_decision = forced_results["Combined"].offloads[0].decision
    if policy_run.refusals:
        refusal_predicted = forced_decision.predicted_time
        refusal_local = forced_decision.original_time
    return CpuOffloadResult(
        app=app_name,
        original_seconds=original.total_time,
        bars=bars,
        combined_policy_seconds=policy_run.total_time,
        combined_policy_offloaded=policy_run.offload_count > 0,
        refusal_predicted_seconds=refusal_predicted,
        refusal_history_local_seconds=refusal_local,
        forced_combined_seconds=bars["Combined"],
    )


def run_all_cpu_offloads() -> List[CpuOffloadResult]:
    return [run_cpu_offload(name) for name in CPU_WORKLOADS]


def format_cpu_offloads(results: List[CpuOffloadResult]) -> str:
    body = []
    for result in results:
        for label in BAR_LABELS:
            paper = PAPER_SHAPE[result.app] if label == "Original" else ""
            measured = secs(result.bars[label])
            if label != "Original":
                measured += f" ({result.delta(label):+.1%})"
            body.append([f"{result.app} {label}", paper, measured])
        if result.app == "biomer":
            body.append([
                "biomer combined policy decision",
                "refuses (790s pred vs 750s local)",
                ("refused" if not result.combined_policy_offloaded
                 else "offloaded (!)"),
            ])
            body.append([
                "biomer manual (forced) partitioning",
                "711s (beats 750s local)",
                secs(result.forced_combined_seconds),
            ])
    return comparison_block(
        "Figure 10: offloading under processing constraints "
        "(surrogate 3.5x client)", body
    )
