"""Figure 6: remote execution overhead under the initial policies.

The emulator replays each memory workload's trace against the 6 MB
client with the paper's initial policy (trigger below 5% free for three
reports, free at least 20%), with the same processor speed on both
sides.  Remote execution overhead = offloading time + communication
time for remote interactions, reported relative to the unconstrained
original run.

Paper values: JavaNote ~4.8%, Dia ~8.5%, Biomer ~27.5%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..emulator import Emulator
from .common import (
    biomer_memory,
    cached_trace,
    dia_memory,
    javanote_memory,
    memory_emulator_config,
)
from .reporting import comparison_block, pct, secs

PAPER_OVERHEADS: Dict[str, str] = {
    "javanote": "4.8%",
    "dia": "8.5%",
    "biomer": "27.5%",
}

MEMORY_WORKLOADS: Dict[str, Callable] = {
    "javanote": javanote_memory,
    "dia": dia_memory,
    "biomer": biomer_memory,
}


@dataclass
class OverheadRow:
    """One Figure 6 bar pair."""

    app: str
    original_seconds: float
    offloaded_seconds: float
    overhead_seconds: float
    overhead_fraction: float
    migration_seconds: float
    comm_seconds: float
    remote_interactions: int
    completed: bool


def run_overhead(app_name: str) -> OverheadRow:
    """Figure 6 for one application."""
    factory = MEMORY_WORKLOADS[app_name]
    trace = cached_trace(app_name, factory)
    emulator = Emulator(trace)
    study = emulator.overhead_study(memory_emulator_config())
    offloaded = study.offloaded
    return OverheadRow(
        app=app_name,
        original_seconds=study.original.total_time,
        offloaded_seconds=offloaded.total_time,
        overhead_seconds=study.overhead_seconds,
        overhead_fraction=study.overhead_fraction,
        migration_seconds=offloaded.migration_time,
        comm_seconds=offloaded.comm_time,
        remote_interactions=offloaded.remote_interactions,
        completed=offloaded.completed,
    )


def run_all_overheads() -> List[OverheadRow]:
    return [run_overhead(name) for name in MEMORY_WORKLOADS]


def format_overheads(rows: List[OverheadRow]) -> str:
    body_rows = []
    for row in rows:
        body_rows.append([
            f"{row.app} overhead (initial policy)",
            PAPER_OVERHEADS[row.app],
            pct(row.overhead_fraction),
        ])
        body_rows.append([
            f"{row.app} original / offloaded time",
            "~300s scale",
            f"{secs(row.original_seconds)} / {secs(row.offloaded_seconds)}",
        ])
    block = comparison_block(
        "Figure 6: remote execution overhead (initial policy)", body_rows
    )
    ordering = " < ".join(
        r.app for r in sorted(rows, key=lambda r: r.overhead_fraction)
    )
    return f"{block}\noverhead ordering: {ordering} (paper: javanote < dia < biomer)"
