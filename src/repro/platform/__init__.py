"""Ad-hoc distributed platform: nodes, discovery, migration, prototype."""

from .discovery import SurrogateDirectory, SurrogateOffer
from .migration import Migrator, PER_OBJECT_OVERHEAD_BYTES
from .node import Node, make_client_node, make_surrogate_node
from .multi import MultiSurrogatePlatform, MultiSurrogateRuntime, SurrogateSpec
from .platform import (
    DistributedPlatform,
    DistributedRuntime,
    INT_ARRAY_CLASS,
    PlatformReport,
)

__all__ = [
    "DistributedPlatform",
    "MultiSurrogatePlatform",
    "MultiSurrogateRuntime",
    "SurrogateSpec",
    "DistributedRuntime",
    "INT_ARRAY_CLASS",
    "Migrator",
    "Node",
    "PER_OBJECT_OVERHEAD_BYTES",
    "PlatformReport",
    "SurrogateDirectory",
    "SurrogateOffer",
    "make_client_node",
    "make_surrogate_node",
]
