"""Object migration between the client and surrogate VMs.

Given a placement (the set of graph nodes the partitioner wants on the
surrogate), the migrator moves the corresponding live objects: whole
classes at class granularity, individual arrays at object granularity.
It charges the transfer against the link, keeps traffic statistics, and
notifies the hooks so the monitor and experiments can see offloads.

Migration is bidirectional: applying a placement also returns to the
client any object whose node is *not* in the offload set, which gives
the platform the "global placement" behaviour the paper lists as future
work (reverse migration on re-evaluation).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from ..core.engine import MigrationOutcome
from ..core.graph import node_class, object_node_id
from ..errors import MigrationError
from ..net.link import LinkModel
from ..net.stats import TrafficStats
from ..rpc.marshal import MESSAGE_HEADER_BYTES
from ..rpc.retry import ReliableDelivery
from ..vm.hooks import HookFanout
from ..vm.objectmodel import JObject
from ..vm.vm import VirtualMachine

#: Serialisation overhead charged per migrated object (type tag, oid,
#: field map framing).
PER_OBJECT_OVERHEAD_BYTES = 16


class Migrator:
    """Applies placements between one client and one surrogate VM."""

    def __init__(
        self,
        client: VirtualMachine,
        surrogate: VirtualMachine,
        link: LinkModel,
        hooks: HookFanout,
        traffic: TrafficStats,
        object_granularity_classes: Set[str] = frozenset(),
        delivery: Optional[ReliableDelivery] = None,
    ) -> None:
        self.client = client
        self.surrogate = surrogate
        self.link = link
        self.hooks = hooks
        self.traffic = traffic
        self.object_granularity_classes = set(object_granularity_classes)
        #: Optional reliability layer: when present, every migration
        #: stream opens with one fault-checked exchange *before* any
        #: object changes residency, so a surrogate crash mid-migration
        #: leaves both heaps exactly as they were.
        self.delivery = delivery
        #: Sequence number of the delivery exchange that opened the last
        #: migration stream (for at-most-once application of retried
        #: streams; 0 when no migration has run under a delivery layer).
        self.last_migration_seq = 0

    @property
    def peer_lost(self) -> bool:
        return self.delivery is not None and self.delivery.peer_dead

    # -- placement interpretation ------------------------------------------------

    def _wants_surrogate(self, obj: JObject, offload_nodes: FrozenSet[str]) -> bool:
        if obj.class_name in self.object_granularity_classes:
            return object_node_id(obj.class_name, obj.oid) in offload_nodes
        return obj.class_name in offload_nodes

    def _select(
        self, vm: VirtualMachine, offload_nodes: FrozenSet[str], to_surrogate: bool
    ) -> List[JObject]:
        chosen = []
        for obj in vm.heap.objects():
            if self._wants_surrogate(obj, offload_nodes) == to_surrogate:
                chosen.append(obj)
        return chosen

    # -- the move itself ------------------------------------------------------

    def apply_placement(self, offload_nodes: FrozenSet[str]) -> MigrationOutcome:
        """Move objects so residency matches ``offload_nodes``.

        Objects of offloaded nodes found on the client move out; objects
        of non-offloaded nodes found on the surrogate move back.
        """
        for node in offload_nodes:
            if node_class(node) == "<main>":
                raise MigrationError("the application entry point cannot move")
        if self.peer_lost:
            # The surrogate is unreachable; recovery already pulled its
            # state home and owns residency until rediscovery.
            return MigrationOutcome()
        outgoing = self._select(self.client, offload_nodes, to_surrogate=True)
        returning = self._select(self.surrogate, offload_nodes, to_surrogate=False)
        moved_bytes = 0
        moved_objects = 0
        seconds = 0.0
        if outgoing:
            nbytes, duration = self._move(outgoing, self.client, self.surrogate)
            moved_bytes += nbytes
            moved_objects += len(outgoing)
            seconds += duration
        if self.peer_lost:
            # The peer died under the outgoing stream: recovery has run,
            # the ``returning`` objects are already home — do not touch
            # them again.
            return MigrationOutcome()
        if returning:
            nbytes, duration = self._move(returning, self.surrogate, self.client)
            moved_bytes += nbytes
            moved_objects += len(returning)
            seconds += duration
        return MigrationOutcome(
            moved_bytes=moved_bytes, moved_objects=moved_objects, seconds=seconds
        )

    def _move(
        self,
        objects: List[JObject],
        source: VirtualMachine,
        destination: VirtualMachine,
    ) -> Tuple[int, float]:
        payload = sum(
            obj.size_bytes + PER_OBJECT_OVERHEAD_BYTES for obj in objects
        )
        total = payload + MESSAGE_HEADER_BYTES
        # Exchange before mutate: the stream's opening message must
        # survive the fault gauntlet before any object changes
        # residency.  A crash here aborts the whole stream un-applied —
        # recovery (triggered inside the failed exchange) sees both
        # heaps exactly as they were.
        if self.delivery is not None:
            if not self.delivery.attempt():
                return 0, 0.0
            self.last_migration_seq = self.delivery.exchanges
        # Capacity check before touching either heap, so a failed
        # migration leaves residency unchanged.
        incoming = sum(obj.size_bytes for obj in objects)
        if destination.heap.free < incoming:
            destination.collect_garbage("pre-migration")
            if destination.heap.free < incoming:
                raise MigrationError(
                    f"{destination.name} cannot host {incoming} bytes "
                    f"({destination.heap.free} free)"
                )
        for obj in objects:
            source.evict(obj)
            destination.adopt(obj)
        duration = self.link.bulk_transfer(total)
        source.clock.advance(duration)
        self.traffic.record(total, category="migration")
        class_names = sorted({obj.class_name for obj in objects})
        self.hooks.on_offload(
            class_names, total, source.name, destination.name
        )
        return total, duration

    def handoff_to(
        self,
        new_surrogate: VirtualMachine,
        backhaul: LinkModel,
        link: Optional[LinkModel] = None,
    ) -> MigrationOutcome:
        """Move the offloaded partition surrogate-to-surrogate.

        The roaming client found a better-placed surrogate: every object
        resident on the current surrogate streams to ``new_surrogate``
        over ``backhaul`` (the surrogate-side infrastructure link) —
        the state never transits the client's wireless hop.  After the
        move this migrator is attached to the new surrogate, talking
        over ``link`` (default: keep the current link model).

        Exactly-once under retry: the stream opens with one
        fault-checked delivery exchange *before* any object moves (the
        delivery layer dedups retransmitted sequence numbers), and
        ``last_migration_seq`` records the stream so recovery can tell
        an applied handoff from an aborted one.  A failed exchange
        aborts the handoff with both surrogates' heaps untouched.
        """
        departing = list(self.surrogate.heap.objects())
        if self.delivery is not None:
            if not self.delivery.attempt():
                return MigrationOutcome()
            self.last_migration_seq = self.delivery.exchanges
        if not departing:
            self.surrogate = new_surrogate
            if link is not None:
                self.link = link
            return MigrationOutcome()
        payload = sum(
            obj.size_bytes + PER_OBJECT_OVERHEAD_BYTES for obj in departing
        )
        total = payload + MESSAGE_HEADER_BYTES
        incoming = sum(obj.size_bytes for obj in departing)
        if new_surrogate.heap.free < incoming:
            new_surrogate.collect_garbage("pre-handoff")
            if new_surrogate.heap.free < incoming:
                raise MigrationError(
                    f"{new_surrogate.name} cannot host {incoming} bytes "
                    f"({new_surrogate.heap.free} free)"
                )
        old = self.surrogate
        for obj in departing:
            old.evict(obj)
            new_surrogate.adopt(obj)
        duration = backhaul.bulk_transfer(total)
        old.clock.advance(duration)
        self.traffic.record(total, category="migration")
        self.hooks.on_offload(
            sorted({obj.class_name for obj in departing}),
            total, old.name, new_surrogate.name,
        )
        self.surrogate = new_surrogate
        if link is not None:
            self.link = link
        return MigrationOutcome(
            moved_bytes=total,
            moved_objects=len(departing),
            seconds=duration,
        )

    def return_everything(self) -> MigrationOutcome:
        """Bring every offloaded object home (platform teardown)."""
        if self.peer_lost:
            return self.repatriate_unreachable()
        return self.apply_placement(frozenset())

    def repatriate_unreachable(self) -> MigrationOutcome:
        """Rebuild every surrogate-resident object on the client.

        The surrogate is gone, so nothing travels the wire and nothing
        is charged to the link or the clock: the client *reconstructs*
        the lost state from its own bookkeeping (the reference map and
        monitored field traffic give it every object it ever saw leave),
        which the emulation models as adopting the same object records
        back into the client heap.  A pre-recovery collection runs if
        the reconstructed state would not fit as-is.
        """
        stranded = list(self.surrogate.heap.objects())
        if not stranded:
            return MigrationOutcome()
        incoming = sum(obj.size_bytes for obj in stranded)
        if self.client.heap.free < incoming:
            self.client.collect_garbage("recovery")
        moved_bytes = 0
        for obj in stranded:
            self.surrogate.evict(obj)
            self.client.adopt(obj)
            moved_bytes += obj.size_bytes
        self.hooks.on_offload(
            sorted({obj.class_name for obj in stranded}),
            0, self.surrogate.name, self.client.name,
        )
        return MigrationOutcome(
            moved_bytes=moved_bytes,
            moved_objects=len(stranded),
            seconds=0.0,
        )
