"""Multi-surrogate platform: offloading across several helpers.

Paper section 2: "If the necessary resources for a client are not
available at the closest surrogate, multiple surrogates could be used
by the client".  This module implements that: the AIDE partitioner
still makes its two-way client/offload decision, and a *placement
assigner* then spreads the offloaded nodes across the available
surrogates — respecting each surrogate's free heap and keeping tightly
coupled nodes together (the same interaction-minimising instinct as the
partitioner itself, applied k-ways greedily).

Object routing needs no changes: the execution context already routes
by each object's home site, whatever the number of sites.  Interactions
*between* surrogates relay through the client's wireless links (two
hops), which the runtime charges accordingly — a structural reason to
keep coupled nodes co-located, which the assigner's cohesion term
reflects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..config import EnhancementFlags, JORNADA, VMConfig
from ..core.engine import MigrationOutcome, OffloadingEngine
from ..core.graph import ExecutionGraph, node_class, object_node_id
from ..core.monitor import ExecutionMonitor, ResourceMonitor
from ..core.partitioner import Partitioner
from ..core.policy import EvaluationContext, OffloadPolicy
from ..errors import (
    ConfigurationError,
    MigrationError,
    OutOfMemoryError,
    PlatformError,
)
from ..net.link import LinkModel
from ..net.stats import TrafficStats
from ..net.wavelan import WAVELAN_11MBPS
from ..rpc.marshal import MESSAGE_HEADER_BYTES
from ..vm.classloader import ClassRegistry
from ..vm.clock import VirtualClock
from ..vm.context import ExecutionContext, MAIN_CLASS, Runtime
from ..vm.hooks import HookFanout
from ..vm.natives import install_standard_library
from ..vm.objectmodel import JObject
from ..vm.vm import VirtualMachine
from .migration import PER_OBJECT_OVERHEAD_BYTES
from .platform import INT_ARRAY_CLASS


@dataclass(frozen=True)
class SurrogateSpec:
    """One surrogate in the cluster: its VM config and its link."""

    name: str
    config: VMConfig
    link: LinkModel = WAVELAN_11MBPS

    def __post_init__(self) -> None:
        if not self.name or self.name == "client":
            raise ConfigurationError(
                f"surrogate name {self.name!r} is not usable"
            )


class MultiSurrogateRuntime(Runtime):
    """N-site runtime: client plus any number of surrogates.

    Client↔surrogate messages ride that surrogate's link; surrogate↔
    surrogate messages relay through the client (two hops) — the ad-hoc
    platform has no surrogate-to-surrogate radio path.
    """

    def __init__(self, client_vm: VirtualMachine,
                 surrogates: Dict[str, Tuple[VirtualMachine, LinkModel]],
                 traffic: TrafficStats) -> None:
        self._client = client_vm
        self._vms: Dict[str, VirtualMachine] = {client_vm.name: client_vm}
        self._links: Dict[str, LinkModel] = {}
        for name, (vm, link) in surrogates.items():
            self._vms[name] = vm
            self._links[name] = link
        self.traffic = traffic

    def client(self) -> VirtualMachine:
        return self._client

    def vm(self, name: str) -> VirtualMachine:
        try:
            return self._vms[name]
        except KeyError:
            raise PlatformError(f"unknown site {name!r}") from None

    def vms(self) -> Iterable[VirtualMachine]:
        return self._vms.values()

    def link_to(self, surrogate_name: str) -> LinkModel:
        try:
            return self._links[surrogate_name]
        except KeyError:
            raise PlatformError(
                f"no link to surrogate {surrogate_name!r}"
            ) from None

    def transfer(self, from_site: str, to_site: str, nbytes: int) -> bool:
        if from_site == to_site:
            return True
        client_name = self._client.name
        if from_site == client_name or to_site == client_name:
            surrogate = to_site if from_site == client_name else from_site
            self._client.clock.advance(self.link_to(surrogate).one_way(nbytes))
            self.traffic.record(nbytes, category="rpc")
            return True
        # Surrogate-to-surrogate: relay through the client.
        self._client.clock.advance(
            self.link_to(from_site).one_way(nbytes)
            + self.link_to(to_site).one_way(nbytes)
        )
        self.traffic.record(nbytes, category="rpc")
        self.traffic.record(nbytes, category="rpc")
        return True

    # -- allocation spill -----------------------------------------------------
    #
    # The surrogate cluster behaves as one memory pool: an allocation on
    # a full surrogate spills to the sibling with the most free heap
    # (never to the client — client pressure is the trigger policy's
    # concern, not the allocator's).

    def _spill_order(self, site: str) -> List[VirtualMachine]:
        preferred = self.vm(site)
        if site == self._client.name:
            return [preferred]
        siblings = sorted(
            (vm for name, vm in self._vms.items()
             if name not in (site, self._client.name)),
            key=lambda vm: -vm.heap.free,
        )
        return [preferred] + siblings

    def new_instance(self, site: str, cls) -> JObject:
        last_error = None
        for vm in self._spill_order(site):
            try:
                return vm.new_instance(cls)
            except OutOfMemoryError as oom:
                last_error = oom
        raise last_error

    def new_array(self, site: str, element_type: str, length: int,
                  data=None) -> "JObject":
        last_error = None
        for vm in self._spill_order(site):
            try:
                return vm.new_array(element_type, length, data=data)
            except OutOfMemoryError as oom:
                last_error = oom
        raise last_error


def assign_offload_nodes(
    graph: ExecutionGraph,
    offload_nodes: FrozenSet[str],
    capacities: Dict[str, int],
    node_memory: Dict[str, int],
    preference: List[str],
) -> Dict[str, str]:
    """Spread offloaded nodes across surrogates.

    Greedy cohesion packing: nodes are placed largest-first; each node
    goes to the surrogate with the strongest interaction coupling to
    the nodes already placed there (so chatty neighbours co-locate and
    avoid the two-hop relay), breaking ties by the caller-supplied
    preference order, subject to each surrogate's free heap.

    Returns ``{node: surrogate_name}``; raises
    :class:`~repro.errors.MigrationError` when some node fits nowhere.
    """
    remaining = dict(capacities)
    placed: Dict[str, str] = {}
    members: Dict[str, Set[str]] = {name: set() for name in capacities}
    order = sorted(
        offload_nodes,
        key=lambda n: (-node_memory.get(n, 0), n),
    )
    rank = {name: index for index, name in enumerate(preference)}
    for node in order:
        need = node_memory.get(node, 0)
        candidates = [
            name for name, free in remaining.items() if free >= need
        ]
        if not candidates:
            raise MigrationError(
                f"no surrogate can host node {node!r} ({need} bytes)"
            )
        best = max(
            candidates,
            key=lambda name: (
                sum(graph.edge_bytes(node, other)
                    for other in members[name]),
                -rank.get(name, len(rank)),
            ),
        )
        placed[node] = best
        members[best].add(node)
        remaining[best] -= need
    return placed


def place_fleet_clients(
    predicted_load: Dict[str, float],
    surrogates: List[str],
    capacities: Optional[Dict[str, int]] = None,
) -> Dict[str, str]:
    """Balance whole *clients* across a surrogate pool.

    The fleet-scale sibling of :func:`assign_offload_nodes`: where that
    assigner spreads one client's graph nodes k-ways by cohesion, this
    one spreads N independent clients by **predicted traffic** (an
    AIDE-Lint cold-start estimate where available, the trace's event
    count otherwise).  Clients are placed heaviest-first onto the
    currently least-loaded surrogate — the classic LPT balance rule —
    with ties broken by pool order, so placement is deterministic for a
    given load map.

    ``capacities`` (optional, clients per surrogate) bounds how many
    clients a member may receive; when every surrogate is full the
    remaining clients overflow to the least-loaded member anyway (the
    fleet's *admission control* decides queue-or-reject, placement only
    picks the target).

    Returns ``{client_id: surrogate_name}``.
    """
    if not surrogates:
        raise ConfigurationError("fleet placement needs at least one "
                                 "surrogate")
    load: Dict[str, float] = {name: 0.0 for name in surrogates}
    count: Dict[str, int] = {name: 0 for name in surrogates}
    rank = {name: index for index, name in enumerate(surrogates)}
    placed: Dict[str, str] = {}
    order = sorted(predicted_load,
                   key=lambda cid: (-predicted_load[cid], cid))
    for client_id in order:
        candidates = surrogates
        if capacities is not None:
            open_members = [
                name for name in surrogates
                if count[name] < capacities.get(name, 0)
            ]
            if open_members:
                candidates = open_members
        best = min(candidates, key=lambda name: (load[name], rank[name]))
        placed[client_id] = best
        load[best] += predicted_load[client_id]
        count[best] += 1
    return placed


class MultiSurrogatePlatform:
    """A client offloading across a cluster of surrogates."""

    def __init__(
        self,
        surrogates: List[SurrogateSpec],
        client_config: Optional[VMConfig] = None,
        offload_policy: Optional[OffloadPolicy] = None,
        flags: EnhancementFlags = EnhancementFlags(),
        single_shot: bool = True,
        registry: Optional[ClassRegistry] = None,
    ) -> None:
        if not surrogates:
            raise ConfigurationError("need at least one surrogate")
        names = [spec.name for spec in surrogates]
        if len(set(names)) != len(names):
            raise ConfigurationError("surrogate names must be unique")
        self.client_config = client_config or VMConfig(device=JORNADA)
        self.flags = flags
        offload_policy = offload_policy or OffloadPolicy.initial()

        if registry is None:
            registry = ClassRegistry()
            install_standard_library(registry)
        self.registry = registry
        self.clock = VirtualClock()
        self.client_vm = VirtualMachine(
            "client", self.client_config, registry, clock=self.clock
        )
        self.surrogate_vms: Dict[str, VirtualMachine] = {}
        self.links: Dict[str, LinkModel] = {}
        for spec in surrogates:
            self.surrogate_vms[spec.name] = VirtualMachine(
                spec.name, spec.config, registry, clock=self.clock
            )
            self.links[spec.name] = spec.link
        #: Preference order for ties in placement: as supplied.
        self.preference = names

        self.hooks = HookFanout()
        self.traffic = TrafficStats()
        self.runtime = MultiSurrogateRuntime(
            self.client_vm,
            {name: (vm, self.links[name])
             for name, vm in self.surrogate_vms.items()},
            self.traffic,
        )
        self.ctx = ExecutionContext(
            self.runtime, registry, hooks=self.hooks, flags=flags
        )
        granularity = (
            {INT_ARRAY_CLASS} if flags.arrays_object_granularity else set()
        )
        self._granularity = granularity
        self.monitor = ExecutionMonitor(object_granularity_classes=granularity)
        self.resources = ResourceMonitor()
        self.hooks.add(self.monitor)
        self.hooks.add(self.resources)
        self.partitioner = Partitioner(offload_policy.make_partition_policy())
        self.engine = OffloadingEngine(
            monitor=self.monitor,
            partitioner=self.partitioner,
            trigger=offload_policy.make_trigger(),
            pinned_provider=self._pinned_nodes,
            context_provider=self._evaluation_context,
            migrate=self._migrate,
            now=lambda: self.clock.now,
            client_site="client",
            single_shot=single_shot,
        )
        self.hooks.add(self.engine)
        for vm in self.runtime.vms():
            self._wire_gc(vm)
        self._install_cross_heap_gc()

    # -- wiring ------------------------------------------------------------

    def _wire_gc(self, vm: VirtualMachine) -> None:
        vm.collector.subscribe(
            lambda report, site=vm.name: self.hooks.on_gc_report(report, site)
        )
        vm.collector.subscribe_free(self.hooks.on_free)

    def _install_cross_heap_gc(self) -> None:
        """Liveness across all sites: any site's heap or direct roots
        can keep any other site's objects alive."""
        all_vms = list(self.runtime.vms())

        def roots_for(local: VirtualMachine):
            peers = [vm for vm in all_vms if vm is not local]

            def roots() -> List[JObject]:
                found: List[JObject] = []
                for peer in peers:
                    for obj in peer.heap.objects():
                        for ref in obj.references():
                            if ref.home == local.name:
                                found.append(ref)
                    for obj in peer.local_roots():
                        if obj.home == local.name:
                            found.append(obj)
                return found

            return roots

        for vm in all_vms:
            vm.add_root_source(roots_for(vm))

    # -- engine plumbing ------------------------------------------------------

    def _pinned_nodes(self) -> List[str]:
        pinned = [MAIN_CLASS]
        pinned.extend(self.registry.pinned_class_names(
            stateless_natives_ok=self.flags.stateless_natives_local
        ))
        return pinned

    def _evaluation_context(self) -> EvaluationContext:
        fastest = min(self.links.values(), key=lambda link: link.rtt)
        best_speed = max(
            vm.device.cpu_speed for vm in self.surrogate_vms.values()
        )
        return EvaluationContext(
            heap_capacity=self.client_vm.heap.capacity,
            client_speed=self.client_vm.device.cpu_speed,
            surrogate_speed=best_speed,
            link=fastest,
            total_cpu=self.monitor.graph.total_cpu(),
            elapsed=self.clock.now,
        )

    # -- placement ------------------------------------------------------------

    def _node_for(self, obj: JObject) -> str:
        if obj.class_name in self._granularity:
            return object_node_id(obj.class_name, obj.oid)
        return obj.class_name

    def _migrate(self, offload_nodes: FrozenSet[str]) -> MigrationOutcome:
        graph = self.monitor.graph
        node_memory = {
            node: (graph.node(node).memory_bytes if graph.has_node(node)
                   else 0)
            for node in offload_nodes
        }
        capacities = {
            name: vm.heap.free for name, vm in self.surrogate_vms.items()
        }
        assignment = assign_offload_nodes(
            graph, offload_nodes, capacities, node_memory, self.preference
        )
        # Gather per-destination batches from every site.
        batches: Dict[Tuple[str, str], List[JObject]] = {}
        for vm in self.runtime.vms():
            for obj in vm.heap.objects():
                node = self._node_for(obj)
                target = assignment.get(node, "client")
                if node_class(node) == MAIN_CLASS:
                    continue
                if target != obj.home:
                    batches.setdefault((obj.home, target), []).append(obj)
        total_bytes = 0
        total_objects = 0
        total_seconds = 0.0
        for (source_name, target_name), objects in sorted(batches.items()):
            source = self.runtime.vm(source_name)
            target = self.runtime.vm(target_name)
            payload = sum(
                o.size_bytes + PER_OBJECT_OVERHEAD_BYTES for o in objects
            )
            wire = payload + MESSAGE_HEADER_BYTES
            for obj in objects:
                source.evict(obj)
                target.adopt(obj)
            duration = self._batch_transfer_seconds(
                source_name, target_name, wire
            )
            self.clock.advance(duration)
            self.traffic.record(wire, category="migration")
            self.hooks.on_offload(
                sorted({o.class_name for o in objects}), wire,
                source_name, target_name,
            )
            total_bytes += wire
            total_objects += len(objects)
            total_seconds += duration
        return MigrationOutcome(
            moved_bytes=total_bytes, moved_objects=total_objects,
            seconds=total_seconds,
        )

    def _batch_transfer_seconds(self, source: str, target: str,
                                wire: int) -> float:
        if source == "client":
            return self.links[target].bulk_transfer(wire)
        if target == "client":
            return self.links[source].bulk_transfer(wire)
        return (self.links[source].bulk_transfer(wire)
                + self.links[target].bulk_transfer(wire))

    # -- running ------------------------------------------------------------

    def run(self, app) -> None:
        app.install(self.registry)
        app.main(self.ctx)

    def surrogate_usage(self) -> Dict[str, int]:
        return {
            name: vm.heap.used for name, vm in self.surrogate_vms.items()
        }
