"""Device nodes: the client and surrogate roles.

A *surrogate* is any device willing to lend resources; a *client* is a
device that may use them (paper section 2).  A node bundles the device
profile with its VM so the platform can reason about both roles
uniformly — including surrogates that are themselves clients of other
surrogates (supported by chaining platforms, see
:class:`~repro.platform.platform.DistributedPlatform`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DeviceProfile, VMConfig
from ..vm.classloader import ClassRegistry
from ..vm.clock import VirtualClock
from ..vm.vm import VirtualMachine


@dataclass
class Node:
    """One device participating in the ad-hoc platform."""

    name: str
    role: str
    vm: VirtualMachine

    @property
    def device(self) -> DeviceProfile:
        return self.vm.config.device

    @property
    def free_heap(self) -> int:
        return self.vm.heap.free

    def __repr__(self) -> str:
        return f"Node({self.name!r}, role={self.role!r})"


def make_client_node(
    config: VMConfig, registry: ClassRegistry, clock: VirtualClock,
    name: str = "client",
) -> Node:
    return Node(name=name, role="client",
                vm=VirtualMachine(name, config, registry, clock=clock))


def make_surrogate_node(
    config: VMConfig, registry: ClassRegistry, clock: VirtualClock,
    name: str = "surrogate",
) -> Node:
    return Node(name=name, role="surrogate",
                vm=VirtualMachine(name, config, registry, clock=clock))
