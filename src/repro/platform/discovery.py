"""Surrogate discovery and selection.

Ad-hoc platform creation (paper section 2) requires a client to find
the most appropriate surrogate based on factors such as access latency
and resource availability.  The directory here is a deliberately simple
local registry — the paper scopes full discovery protocols out — but the
*selection* logic (filter by requirements, rank by latency then by
compute) is the part the platform depends on and is implemented fully.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import DeviceProfile
from ..errors import PlatformError, SurrogateUnavailableError
from ..net.link import LinkModel


@dataclass(frozen=True)
class SurrogateOffer:
    """One advertised surrogate: its device, its link to us, its load."""

    name: str
    device: DeviceProfile
    link: LinkModel
    load: float = 0.0  # 0.0 idle .. 1.0 saturated

    def __post_init__(self) -> None:
        if not 0.0 <= self.load <= 1.0:
            raise PlatformError(f"load must be in [0, 1], got {self.load}")

    @property
    def effective_speed(self) -> float:
        """CPU speed discounted by current load."""
        return self.device.cpu_speed * (1.0 - self.load)


class SurrogateDirectory:
    """Registry of currently reachable surrogates.

    Directory mutation and selection are serialised by a lock: during a
    surrogate-to-surrogate handoff a re-``select`` can race a
    ``withdraw`` from the failure detector, and a ``select`` must see
    either the offer or its absence — never a half-removed entry.
    """

    def __init__(self) -> None:
        self._offers: Dict[str, SurrogateOffer] = {}
        self._lock = threading.Lock()

    def advertise(self, offer: SurrogateOffer) -> None:
        """Add or refresh an offer (latest advertisement wins)."""
        with self._lock:
            self._offers[offer.name] = offer

    def withdraw(self, name: str) -> SurrogateOffer:
        """Remove an offer, returning it (for handoff bookkeeping)."""
        with self._lock:
            if name not in self._offers:
                raise PlatformError(f"no advertised surrogate named {name!r}")
            return self._offers.pop(name)

    def offers(self) -> List[SurrogateOffer]:
        with self._lock:
            return sorted(self._offers.values(), key=lambda o: o.name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._offers)

    def select(
        self,
        min_free_heap: int = 0,
        max_rtt: Optional[float] = None,
        min_effective_speed: float = 0.0,
        exclude: Tuple[str, ...] = (),
    ) -> SurrogateOffer:
        """Pick the best offer meeting the constraints.

        Candidates are filtered by heap, round-trip latency, and
        load-discounted speed, then ranked: lowest RTT first (the
        dominant cost for fine-grained offloading), effective speed as
        the tie-breaker.  ``exclude`` drops named offers from
        consideration — the handoff path uses it to rule out the
        surrogate being abandoned even while its advertisement is
        still live.
        """
        with self._lock:
            eligible = [
                offer for offer in self._offers.values()
                if offer.name not in exclude
                and offer.device.heap_capacity >= min_free_heap
                and (max_rtt is None or offer.link.rtt <= max_rtt)
                and offer.effective_speed >= min_effective_speed
            ]
            if not eligible:
                raise SurrogateUnavailableError(
                    f"no surrogate satisfies min_free_heap={min_free_heap}, "
                    f"max_rtt={max_rtt}, "
                    f"min_effective_speed={min_effective_speed} "
                    f"among {len(self._offers)} offers"
                )
            return min(
                eligible,
                key=lambda o: (o.link.rtt, -o.effective_speed, o.name),
            )
