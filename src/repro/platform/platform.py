"""The ad-hoc distributed platform (the paper's prototype).

A :class:`DistributedPlatform` joins a client VM and a surrogate VM over
a simulated wireless link, shares the application bytecodes between
them, and installs the three AIDE modules: the execution monitor, the
partitioner (behind the offloading engine), and the remote invocation
support.  Running a guest application on the platform reproduces the
paper's prototype behaviour: the application starts on the client, the
platform watches memory pressure, and when the trigger policy fires it
transparently offloads the selected classes to the surrogate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..config import EnhancementFlags, JORNADA, PC_SURROGATE, VMConfig
from ..core.engine import MigrationOutcome, OffloadEvent, OffloadingEngine
from ..core.monitor import ExecutionMonitor, ResourceMonitor
from ..core.partitioner import Partitioner
from ..core.policy import (
    BandwidthTrendTrigger,
    EvaluationContext,
    OffloadPolicy,
    PartitionPolicy,
)
from ..errors import (
    MigrationError,
    PlatformError,
    SurrogateUnavailableError,
)
from ..net.faults import FaultReport, FaultSchedule, FaultSpec
from ..net.link import LinkModel
from ..net.mobility import LinkProfile, MobilityConfig, MobilityReport
from ..net.stats import TrafficStats
from ..net.wavelan import WAVELAN_11MBPS
from ..rpc.batch import DataPlane, DataPlaneConfig
from ..rpc.channel import RpcChannel
from ..rpc.retry import ReliableDelivery, RetryPolicy
from ..rpc.distgc import CrossHeapRootScanner
from ..vm.classloader import ClassRegistry
from ..vm.clock import VirtualClock
from ..vm.context import ExecutionContext, MAIN_CLASS, Runtime
from ..vm.hooks import HookFanout
from ..vm.natives import install_standard_library
from ..vm.vm import VirtualMachine
from .discovery import SurrogateDirectory, SurrogateOffer
from .migration import Migrator
from .node import make_client_node, make_surrogate_node

#: Graph-node name for primitive integer arrays, the class the paper's
#: "Array" enhancement tracks at object granularity.
INT_ARRAY_CLASS = "int[]"


class DistributedRuntime(Runtime):
    """Two-site runtime: routing between the client and one surrogate."""

    def __init__(
        self,
        client_vm: VirtualMachine,
        surrogate_vm: VirtualMachine,
        link: LinkModel,
        traffic: TrafficStats,
    ) -> None:
        self._vms = {client_vm.name: client_vm, surrogate_vm.name: surrogate_vm}
        self._client = client_vm
        self.link = link
        self.traffic = traffic
        #: Optional reliability layer.  When present, every cross-site
        #: transfer runs the fault gauntlet first (drops, retries,
        #: partitions, crash detection); the base link charge below only
        #: happens for delivered messages.
        self.delivery: Optional[ReliableDelivery] = None

    def client(self) -> VirtualMachine:
        return self._client

    def vm(self, name: str) -> VirtualMachine:
        try:
            return self._vms[name]
        except KeyError:
            raise PlatformError(f"unknown site {name!r}") from None

    def vms(self) -> Iterable[VirtualMachine]:
        return self._vms.values()

    def register(self, vm: VirtualMachine) -> None:
        """Attach another site (used by surrogate handoff)."""
        if vm.name in self._vms:
            raise PlatformError(f"site {vm.name!r} already registered")
        self._vms[vm.name] = vm

    def transfer(self, from_site: str, to_site: str, nbytes: int) -> bool:
        if from_site == to_site:
            return True
        self.vm(from_site)  # validate both endpoints
        self.vm(to_site)
        if self.delivery is not None and not self.delivery.attempt():
            # The peer was declared dead under this exchange; recovery
            # has already run (via ``on_peer_lost``) and the caller must
            # resolve the operation locally instead of charging it.
            return False
        self._client.clock.advance(self.link.one_way(nbytes))
        self.traffic.record(nbytes, category="rpc")
        return True


@dataclass
class PlatformReport:
    """Summary of one application run on the platform."""

    app_name: str
    elapsed: float
    offload_count: int
    refusal_count: int
    migrated_bytes: int
    rpc_messages: int
    rpc_bytes: int
    remote_invocations: int
    remote_native_invocations: int
    client_heap_used: int
    surrogate_heap_used: int
    # Cross-site data-plane counters (all zero when the optimisations
    # are off — the default — so older readers see familiar numbers).
    cached_remote_reads: int = 0
    rpc_rtts_saved: int = 0
    rpc_bytes_saved: int = 0
    pruned_handles: int = 0
    #: Recovery section (``None`` when no fault injection was
    #: configured): the :class:`~repro.net.faults.FaultReport` counters
    #: — retries, timeouts, downtime charged, objects repatriated,
    #: partitioning epochs survived — as a plain dict.
    faults: Optional[dict] = None


class DistributedPlatform:
    """One client + one surrogate joined at run time."""

    def __init__(
        self,
        client_config: Optional[VMConfig] = None,
        surrogate_config: Optional[VMConfig] = None,
        link: LinkModel = WAVELAN_11MBPS,
        offload_policy: Optional[OffloadPolicy] = None,
        partition_policy: Optional[PartitionPolicy] = None,
        flags: EnhancementFlags = EnhancementFlags(),
        single_shot: bool = True,
        reevaluate_every: Optional[float] = None,
        hints=None,
        profile=None,
        cold_start=None,
        registry: Optional[ClassRegistry] = None,
        install_stdlib: bool = True,
        data_plane: Optional[DataPlaneConfig] = None,
        faults: Optional[FaultSpec] = None,
        retry: Optional[RetryPolicy] = None,
        link_profile: Optional[LinkProfile] = None,
        mobility: Optional[MobilityConfig] = None,
        directory: Optional[SurrogateDirectory] = None,
    ) -> None:
        self.client_config = client_config or VMConfig(device=JORNADA)
        self.surrogate_config = surrogate_config or VMConfig(device=PC_SURROGATE)
        if link_profile is not None:
            # A scheduled profile owns the link from t=0; the static
            # ``link`` argument is ignored in its favour.
            link = link_profile.link_at(0.0)
        self.link = link
        self.flags = flags
        offload_policy = offload_policy or OffloadPolicy.initial()
        self.offload_policy = offload_policy

        if registry is None:
            registry = ClassRegistry()
            if install_stdlib:
                install_standard_library(registry)
        self.registry = registry
        self.clock = VirtualClock()
        self.client = make_client_node(self.client_config, registry, self.clock)
        self.surrogate = make_surrogate_node(
            self.surrogate_config, registry, self.clock
        )
        self.hooks = HookFanout()
        self.traffic = TrafficStats()
        self.runtime = DistributedRuntime(
            self.client.vm, self.surrogate.vm, link, self.traffic
        )
        # Fault injection and the recovery ladder.  With a spec, every
        # cross-site exchange runs through ReliableDelivery: seeded
        # drops/spikes/partitions, bounded retransmission, and — on a
        # declared surrogate death — the graceful-degradation callback.
        self.fault_spec = faults
        self.retry_policy = retry if retry is not None else RetryPolicy()
        self.fault_report = FaultReport(
            spec=faults.canonical() if faults is not None else ""
        )
        self.fault_schedule = (
            FaultSchedule(faults) if faults is not None else None
        )
        self.delivery: Optional[ReliableDelivery] = None
        if faults is not None:
            self.delivery = ReliableDelivery(
                self.retry_policy,
                schedule=self.fault_schedule,
                charge=self.clock.advance,
                counters=self.fault_report,
                now=lambda: self.clock.now,
                on_peer_lost=self._on_surrogate_lost,
            )
        self.runtime.delivery = self.delivery
        self._lost_at: Optional[float] = None
        # Mobility: a scheduled link profile plus (optionally) the
        # trend trigger that turns decay into proactive action.
        self.link_profile = link_profile
        self.mobility = mobility
        self.directory = directory
        self._epoch_start = 0.0
        self._current_offer_name = ""
        self._offloaded_before_repatriation: Optional[frozenset] = None
        self.mobility_report: Optional[MobilityReport] = (
            MobilityReport(profile=link_profile.name)
            if link_profile is not None else None
        )
        self._trend: Optional[BandwidthTrendTrigger] = None
        if mobility is not None:
            self._trend = BandwidthTrendTrigger(
                mobility.threshold_bps,
                horizon_s=mobility.horizon_s,
                window=mobility.window,
                restore_bps=mobility.restore_bps,
            )
            if self.mobility_report is None:
                self.mobility_report = MobilityReport()
        dp_config = data_plane if data_plane is not None else DataPlaneConfig()
        #: RPC worker-pool service quantum, threaded into every channel
        #: this platform creates (including post-handoff rebuilds).
        self._service_quantum_s = dp_config.service_quantum_s
        self.data_plane = (
            DataPlane(dp_config, link, self.runtime.transfer)
            if dp_config.any_enabled else None
        )
        self.ctx = ExecutionContext(
            self.runtime, registry, hooks=self.hooks, flags=flags,
            data_plane=self.data_plane,
        )

        granularity = {INT_ARRAY_CLASS} if flags.arrays_object_granularity else set()
        self.monitor = ExecutionMonitor(
            object_granularity_classes=granularity, profile=profile
        )
        self.resources = ResourceMonitor()
        self.hooks.add(self.monitor)
        self.hooks.add(self.resources)

        self.migrator = Migrator(
            self.client.vm,
            self.surrogate.vm,
            link,
            self.hooks,
            self.traffic,
            object_granularity_classes=granularity,
            delivery=self.delivery,
        )
        self.partitioner = Partitioner(
            partition_policy or offload_policy.make_partition_policy(),
            hints=hints,
        )
        self.engine = OffloadingEngine(
            monitor=self.monitor,
            partitioner=self.partitioner,
            trigger=offload_policy.make_trigger(),
            pinned_provider=self.pinned_nodes,
            context_provider=self.evaluation_context,
            migrate=self._migrate,
            now=lambda: self.clock.now,
            client_site=self.client.vm.name,
            single_shot=single_shot,
            reevaluate_every=reevaluate_every,
        )
        # Static-analysis cold start (a ColdStartSeed): seeds the
        # monitor's graph with the predicted interaction structure and
        # installs inferred hints unless explicit ``hints`` were given.
        self.engine.apply_cold_start(cold_start)
        self.hooks.add(self.engine)

        self.channel = RpcChannel(
            self.ctx, self.client.vm.name, self.surrogate.vm.name,
            delivery=self.delivery,
            service_quantum_s=self._service_quantum_s,
        )
        self._wire_gc(self.client.vm)
        self._wire_gc(self.surrogate.vm)
        self._install_distributed_gc()
        self._torn_down = False

    # -- construction helpers ------------------------------------------------

    def _wire_gc(self, vm: VirtualMachine) -> None:
        # The channel barrier runs first: export handles for collected
        # objects are pruned (and pending data-plane traffic flushed)
        # before the report reaches the offloading engine.
        vm.collector.subscribe(
            lambda report, site=vm.name: self._gc_barrier(site)
        )
        vm.collector.subscribe(
            lambda report, site=vm.name: self.hooks.on_gc_report(report, site)
        )
        vm.collector.subscribe_free(self.hooks.on_free)
        if self.data_plane is not None:
            vm.collector.subscribe_free(
                lambda obj: self.data_plane.note_free(obj.oid)
            )

    def _gc_barrier(self, site: str) -> None:
        if self.data_plane is not None:
            self.data_plane.gc_barrier()
        # After a handoff the departed surrogate keeps collecting but is
        # no longer a channel endpoint; only current endpoints prune.
        if site in self.channel.exports:
            self.channel.gc_barrier(site)

    def _install_distributed_gc(self) -> None:
        # Each scanner also consults the peer's *direct* roots (named
        # globals, static fields): a client global may point straight at
        # a migrated object on the surrogate.
        client_scanner = CrossHeapRootScanner(
            self.client.vm, self.surrogate.vm,
            self.channel.exports[self.client.vm.name],
            extra_peer_roots=self.surrogate.vm.local_roots,
        )
        surrogate_scanner = CrossHeapRootScanner(
            self.surrogate.vm, self.client.vm,
            self.channel.exports[self.surrogate.vm.name],
            extra_peer_roots=self.client.vm.local_roots,
        )
        self.client.vm.add_root_source(client_scanner.roots)
        self.surrogate.vm.add_root_source(surrogate_scanner.roots)

    @classmethod
    def from_discovery(
        cls,
        directory: SurrogateDirectory,
        client_config: Optional[VMConfig] = None,
        min_free_heap: int = 0,
        max_rtt: Optional[float] = None,
        **kwargs,
    ) -> "DistributedPlatform":
        """Ad-hoc creation: pick the best advertised surrogate and attach."""
        offer = directory.select(min_free_heap=min_free_heap, max_rtt=max_rtt)
        return cls(
            client_config=client_config,
            surrogate_config=VMConfig(device=offer.device),
            link=offer.link,
            **kwargs,
        )

    # -- engine plumbing ------------------------------------------------------

    def pinned_nodes(self) -> List[str]:
        """Graph nodes that must stay on the client.

        The application entry point and every class with native methods
        (only *stateful* natives under the stateless-native enhancement).
        """
        pinned = [MAIN_CLASS]
        pinned.extend(
            self.registry.pinned_class_names(
                stateless_natives_ok=self.flags.stateless_natives_local
            )
        )
        return pinned

    def evaluation_context(self) -> EvaluationContext:
        return EvaluationContext(
            heap_capacity=self.client.vm.heap.capacity,
            client_speed=self.client.device.cpu_speed,
            surrogate_speed=self.surrogate.device.cpu_speed,
            link=self.link,
            total_cpu=self.monitor.graph.total_cpu(),
            elapsed=self.clock.now,
        )

    def _migrate(self, offload_nodes) -> MigrationOutcome:
        if self.data_plane is not None:
            # Migration barrier: pending coalesced traffic must be
            # charged before residency changes under it...
            self.data_plane.migration_barrier()
        outcome = self.migrator.apply_placement(offload_nodes)
        if self.data_plane is not None:
            # ...and the read cache cannot outlive the old placement.
            self.data_plane.note_migration()
        # A post-offload cycle refreshes the free-memory picture so the
        # trigger policy sees the relief immediately.
        self.client.vm.collect_garbage("post-offload")
        return outcome

    # -- failure and recovery (graceful degradation) ---------------------------

    def _on_surrogate_lost(self, reason: str) -> None:
        """The delivery layer declared the surrogate dead: degrade.

        Runs, in order: drain the in-flight coalesced batch (it died
        with the peer, un-charged), invalidate the remote read cache,
        park the offloading engine, reconstruct every unreachable
        remote object client-side, and clear the now-meaningless export
        tables.  After this the platform is a client-only monolith;
        every subsequent "remote" operation resolves locally.
        """
        report = self.fault_report
        report.recoveries += 1
        self._lost_at = self.clock.now
        # 1. In-flight batches died with the peer — drop them un-charged
        #    before anything (a GC barrier, the report) could flush them.
        if self.data_plane is not None:
            self.data_plane.drop_pending()
            # 2. Cached remote reads describe state that no longer exists.
            self.data_plane.note_migration()
        # 3. No more placements until a surrogate is reachable again.
        self.engine.suspend()
        # 4. Rebuild the unreachable state client-side (zero wire charge).
        outcome = self.migrator.repatriate_unreachable()
        report.objects_repatriated += outcome.moved_objects
        report.repatriated_bytes += outcome.moved_bytes
        # 5. Neither side can resolve the other's handles any more.
        for refmap in self.channel.exports.values():
            refmap.clear()

    @property
    def surrogate_lost(self) -> bool:
        return self.delivery is not None and self.delivery.peer_dead

    def rediscover(self, attempt_offload: bool = True):
        """A replacement surrogate was discovered: leave degraded mode.

        Closes the downtime window, revives the delivery layer (the
        crash latch disarms — the spec described the *old* surrogate's
        death), resumes the offloading engine, and warm-starts a fresh
        partitioning epoch from the incremental session, so the new
        placement comes out of a warm MINCUT instead of a cold one.
        Returns the warm-start :class:`OffloadEvent` (or ``None`` when
        ``attempt_offload`` is false).
        """
        if not self.surrogate_lost:
            raise PlatformError("no lost surrogate to rediscover")
        report = self.fault_report
        if self._lost_at is not None:
            report.downtime_s += self.clock.now - self._lost_at
            self._lost_at = None
        self.delivery.revive()
        self.engine.resume()
        report.rediscoveries += 1
        if attempt_offload:
            return self.engine.attempt()
        return None

    # -- running applications ------------------------------------------------------

    def run(self, app) -> PlatformReport:
        """Install and execute a guest application to completion."""
        if self._torn_down:
            raise PlatformError("platform has been torn down")
        app.install(self.registry)
        app.main(self.ctx)
        return self.report(app.name)

    def _faults_section(self) -> Optional[dict]:
        """The report's recovery section (``None`` without injection)."""
        if self.delivery is None:
            return None
        report = self.fault_report
        # Mirror the reliability counters into the execution monitor's
        # RemoteCounters, where the rest of the remote-op accounting
        # lives.
        remote = self.monitor.remote
        remote.retries = report.retries
        remote.timeouts = report.timeouts
        remote.duplicates_suppressed = report.duplicates_suppressed
        remote.fault_time_s = report.fault_time_s
        if self.data_plane is not None:
            report.dropped_batches = self.data_plane.stats.dropped_batches
        remote.dropped_batches = report.dropped_batches
        report.epochs_survived = len(self.engine.performed_events)
        section = report.as_dict()
        if self._lost_at is not None:
            # The downtime window is still open: charge it up to "now"
            # without closing it (report() must stay idempotent).
            section["downtime_s"] += self.clock.now - self._lost_at
        return section

    def report(self, app_name: str = "") -> PlatformReport:
        if self.data_plane is not None:
            # Charge whatever is still buffered before summarising.
            self.data_plane.flush()
        rpc = self.traffic.category("rpc")
        dp_stats = self.data_plane.stats if self.data_plane is not None else None
        return PlatformReport(
            app_name=app_name,
            elapsed=self.clock.now,
            offload_count=self.engine.offload_count,
            refusal_count=self.engine.refusal_count,
            migrated_bytes=self.traffic.category("migration").bytes,
            rpc_messages=rpc.messages,
            rpc_bytes=rpc.bytes,
            remote_invocations=self.monitor.remote.remote_invocations,
            remote_native_invocations=self.monitor.remote.remote_native_invocations,
            client_heap_used=self.client.vm.heap.used,
            surrogate_heap_used=self.surrogate.vm.heap.used,
            cached_remote_reads=self.monitor.remote.cached_reads,
            rpc_rtts_saved=dp_stats.rtts_saved if dp_stats else 0,
            rpc_bytes_saved=dp_stats.bytes_saved if dp_stats else 0,
            pruned_handles=self.channel.pruned_handles,
            faults=self._faults_section(),
        )

    @property
    def offload_events(self) -> List[OffloadEvent]:
        return self.engine.events

    @property
    def elapsed(self) -> float:
        return self.clock.now

    def teardown(self) -> MigrationOutcome:
        """Dissolve the ad-hoc platform, returning all state to the client."""
        if self.data_plane is not None:
            self.data_plane.migration_barrier()
        outcome = self.migrator.return_everything()
        if self.data_plane is not None:
            self.data_plane.note_migration()
        self._torn_down = True
        return outcome

    # -- mobility (paper section 8: "combine offloading and mobility") ---------

    def handoff(self, offer: SurrogateOffer,
                backhaul: Optional[LinkModel] = None) -> MigrationOutcome:
        """Move the platform to a new surrogate as the user roams.

        Implements the migration answer to the paper's handoff question
        ("should the objects on the first surrogate be migrated to the
        second surrogate?"): every object on the departing surrogate is
        shipped to the new one over a surrogate-to-surrogate backhaul
        link (infrastructure wiring, default fast Ethernet), the client
        link is switched to the new offer's link, and the AIDE modules
        re-attach to the new surrogate.  Execution continues
        transparently — subsequent remote interactions route to the new
        surrogate.
        """
        from ..net.wavelan import ETHERNET_100MBPS

        if self._torn_down:
            raise PlatformError("platform has been torn down")
        if self.data_plane is not None:
            self.data_plane.migration_barrier()
            self.data_plane.note_migration()
        backhaul = backhaul if backhaul is not None else ETHERNET_100MBPS
        suffix = sum(1 for vm in self.runtime.vms()) - 1
        new_name = f"surrogate-{suffix + 1}"
        new_node = make_surrogate_node(
            VMConfig(device=offer.device), self.registry, self.clock,
            name=new_name,
        )
        self.runtime.register(new_node.vm)
        new_node.vm.add_root_source(self.ctx.frame_roots)
        self._wire_gc(new_node.vm)

        # The existing migrator (and its delivery layer, so exactly-once
        # and the recovery ladder survive the handoff) streams the state
        # over the backhaul and re-attaches to the new surrogate.
        outcome = self.migrator.handoff_to(
            new_node.vm, backhaul, link=offer.link
        )
        if self.migrator.surrogate is not new_node.vm:
            # The opening delivery exchange failed: the stream aborted
            # un-applied and recovery owns the old surrogate's state —
            # leave the platform attached where it was.
            return outcome

        # Re-point the platform at the new surrogate.
        self.surrogate = new_node
        self._set_link(offer.link)
        self._epoch_start = self.clock.now
        self._current_offer_name = offer.name
        self.channel = RpcChannel(
            self.ctx, self.client.vm.name, new_node.vm.name,
            delivery=self.delivery,
            service_quantum_s=self._service_quantum_s,
        )
        client_scanner = CrossHeapRootScanner(
            self.client.vm, new_node.vm,
            self.channel.exports[self.client.vm.name],
            extra_peer_roots=new_node.vm.local_roots,
        )
        surrogate_scanner = CrossHeapRootScanner(
            new_node.vm, self.client.vm,
            self.channel.exports[new_node.vm.name],
            extra_peer_roots=self.client.vm.local_roots,
        )
        self.client.vm.add_root_source(client_scanner.roots)
        new_node.vm.add_root_source(surrogate_scanner.roots)
        if self.mobility_report is not None:
            self.mobility_report.handoffs += 1
            self.mobility_report.handoff_bytes += outcome.moved_bytes
            self.mobility_report.handoff_time_s += outcome.seconds
        return outcome

    def _set_link(self, link: LinkModel) -> None:
        """Re-point every link-cost consumer at ``link``.

        The runtime (RPC transfer charges), the migrator (placement
        streams), and the data plane's coalescer (RTT-saving
        accounting) each hold their own reference; a link change that
        misses one silently keeps charging old-link costs.
        """
        self.link = link
        self.runtime.link = link
        self.migrator.link = link
        if self.data_plane is not None and self.data_plane.coalescer is not None:
            self.data_plane.coalescer.link = link

    def poll_mobility(self) -> Optional[str]:
        """Resolve the link profile against the clock and react.

        Applications (and the platform-backed experiment drivers) call
        this between operations.  Returns the action taken — ``"fire"``
        (proactive handoff or repatriation), ``"recover"``
        (re-offload after the link came back), or ``None``.

        Bandwidth/latency segments resolve relative to the current
        attachment epoch (a handoff restarts the profile: the client is
        adjacent to the new surrogate again); disconnection windows are
        absolute and handled by the fault layer, not here.
        """
        if self.link_profile is None:
            return None
        now = self.clock.now
        link = self.link_profile.link_at(now - self._epoch_start)
        if link != self.link:
            if self.data_plane is not None:
                # Buffered traffic was produced under the old link;
                # charge it at old-link prices before switching.
                self.data_plane.flush()
            self._set_link(link)
            if self.mobility_report is not None:
                self.mobility_report.link_changes += 1
        if self._trend is None or self.mobility is None:
            return None
        action = self._trend.observe(now, link.bandwidth_bps)
        if action == "fire":
            if self.mobility_report is not None:
                self.mobility_report.trend_fires += 1
            self._on_trend_fire()
        elif action == "recover":
            self._on_trend_recover()
        return action

    def _on_trend_fire(self) -> None:
        """The link is decaying: act before it becomes useless."""
        mobility = self.mobility
        if mobility.mode == "handoff" and self.directory is not None:
            try:
                offer = self.directory.select(
                    exclude=(getattr(self, "_current_offer_name", ""),),
                )
            except SurrogateUnavailableError:
                offer = None
            if offer is not None:
                self.handoff(offer, backhaul=mobility.backhaul)
                return
        # Repatriation mode (or no better surrogate on offer): pull the
        # offloaded partition home over the still-working link, and
        # remember it for re-offload when the link recovers.
        offloaded = frozenset(
            obj.class_name for obj in self.surrogate.vm.heap.objects()
        )
        try:
            outcome = self._migrate(frozenset())
        except MigrationError:
            # The client cannot host the partition — usually exactly why
            # it was offloaded.  Proactive repatriation is an
            # optimisation, not a correctness requirement: stay remote
            # and ride the degraded link (the fault layer still covers
            # an actual outage).
            return
        self._offloaded_before_repatriation = offloaded or None
        if self.mobility_report is not None:
            self.mobility_report.proactive_repatriations += 1
            self.mobility_report.proactively_repatriated_bytes += (
                outcome.moved_bytes
            )

    def _on_trend_recover(self) -> None:
        """The link came back: restore the pre-repatriation placement.

        The remembered partition re-applies directly — the policy
        already chose it once, and the client's situation has only
        gotten worse for having taken the state back — so recovery is
        the placement-repair path, not a fresh policy evaluation.
        """
        placement = self._offloaded_before_repatriation
        if placement is None:
            return
        self._offloaded_before_repatriation = None
        try:
            outcome = self._migrate(placement)
        except MigrationError:
            return
        if outcome.moved_objects and self.mobility_report is not None:
            self.mobility_report.reoffloads += 1
