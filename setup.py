"""Legacy setup shim: enables `pip install -e .` on environments
without the `wheel` package (offline editable installs fall back to
the setup.py develop path)."""

from setuptools import setup

setup()
